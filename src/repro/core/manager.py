"""The GNF Manager: the provider's central controller.

Section 3: "The Manager allows single or chain of NFs to be associated with
a subset of a selected client's traffic.  This is achieved by providing a
set of APIs to control the state of NFs' containers across all stations and
keeping a connection with all the Agents in the network.  The Manager is
also responsible for continuously monitoring the health and resource
utilization from the GNF stations, allowing the provider to detect
resource-hotspots ...  Using the same API, individual NFs can relay
notifications through their local Agent to the Manager."

This class implements exactly those responsibilities: the attach/detach API
used by the UI, Agent registration and heartbeat processing, client-location
tracking fed by Agent (dis)connection events, hotspot detection,
notification collection, and the hook the roaming coordinator uses to
migrate NFs when a client shows up at a different station.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.core.agent import ChainDeployment, GNFAgent
from repro.core.api import (
    AgentHeartbeat,
    ClientEvent,
    ControlChannel,
    NFNotificationMessage,
)
from repro.core.chain import ServiceChain
from repro.core.errors import UnknownAgentError, UnknownAssignmentError, UnknownClientError
from repro.core.monitoring import HealthMonitor, HotspotDetector
from repro.core.notifications import NotificationCenter, ProviderNotification
from repro.core.placement import (
    ChainSegment,
    PlacementDecision,
    PlacementEngine,
    PlacementStrategy,
    StationView,
)
from repro.core.policy import TrafficSelector
from repro.core.repository import NFRepository
from repro.core.scheduler import NFScheduler, TimeSchedule
from repro.netem.simulator import Simulator
from repro.netem.topology import EdgeTopology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.roaming import RoamingCoordinator

_assignment_ids = itertools.count(1)


class AssignmentState(enum.Enum):
    """Lifecycle of an NF assignment."""

    PENDING = "pending"
    DEPLOYING = "deploying"
    ACTIVE = "active"
    MIGRATING = "migrating"
    REMOVED = "removed"
    FAILED = "failed"


@dataclass
class Assignment:
    """One client's NF (or chain) assignment, as the Manager tracks it."""

    assignment_id: str
    client_ip: str
    chain: ServiceChain
    selector: TrafficSelector
    schedule: TimeSchedule
    station_name: str
    state: AssignmentState = AssignmentState.PENDING
    requested_at: float = 0.0
    active_at: Optional[float] = None
    failure_reason: str = ""
    station_history: List[str] = field(default_factory=list)
    migrations: int = 0
    #: A split embedding's segment map.  Empty (or a single entry) means the
    #: historical whole-chain deployment on ``station_name``; two or more
    #: entries mean the assignment owns containers on that many stations, the
    #: first (head) segment -- holding the client-nearest NFs -- living on
    #: ``station_name`` and roaming with the client.
    segments: List[ChainSegment] = field(default_factory=list)
    #: Chain parts (head + remote segments) still booting; the assignment
    #: turns ACTIVE only when this reaches zero.
    segments_pending: int = 0
    _segment_chains: List[ServiceChain] = field(default_factory=list, repr=False)
    #: Optional observer fired as ``hook(assignment, old_state, new_state)``
    #: whenever ``state`` is reassigned.  The federation frontend installs it
    #: to stream active-assignment / enabled-NF deltas into the global rollup
    #: without scanning the assignment table; it travels with the object
    #: through release/adopt handoffs.  Excluded from repr/compare so
    #: assignments stay digest-neutral.
    on_state_change: Optional[Callable[["Assignment", AssignmentState, AssignmentState], None]] = field(
        default=None, repr=False, compare=False
    )

    def __setattr__(self, name: str, value) -> None:
        if name == "state":
            old = getattr(self, "state", None)
            object.__setattr__(self, name, value)
            hook = getattr(self, "on_state_change", None)
            # ``old is None`` is the dataclass-init first write; skip it.
            if hook is not None and old is not None and old is not value:
                hook(self, old, value)
            return
        object.__setattr__(self, name, value)

    @property
    def attach_latency_s(self) -> Optional[float]:
        """Time from the attach API call until traffic steering was active."""
        if self.active_at is None:
            return None
        return self.active_at - self.requested_at

    @property
    def is_split(self) -> bool:
        return len(self.segments) > 1

    def apply_segments(self, segments: List[ChainSegment]) -> None:
        """Adopt a placement decision's segment map.

        Sub-chains are materialised once here (not per read) so every later
        dispatch, migration and teardown of the same segment reuses the same
        :class:`~repro.core.chain.ServiceChain` object.
        """
        self.segments = list(segments)
        self._segment_chains = (
            [self.chain.sub_chain(s.start, s.end) for s in self.segments]
            if len(self.segments) > 1
            else []
        )

    def segment_chains(self) -> List[ServiceChain]:
        """The per-segment sub-chains of a split assignment ([] otherwise)."""
        return self._segment_chains

    def head_chain(self) -> ServiceChain:
        """What the home station runs: the head segment of a split
        embedding, the whole chain otherwise.  Migration deploys exactly
        this at the client's new station -- remote segments stay put."""
        if len(self.segments) > 1:
            return self._segment_chains[0]
        return self.chain

    def head_moved(self, new_station: str) -> None:
        """Record the head segment's new home after a migration."""
        if self.segments:
            self.segments[0] = replace(self.segments[0], station_name=new_station)


ClientEventListener = Callable[[ClientEvent], None]


def make_assignment(
    now: float,
    client_ip: str,
    chain: ServiceChain,
    selector: Optional[TrafficSelector],
    schedule: Optional[TimeSchedule],
    station_name: str,
) -> Assignment:
    """Build a fresh Assignment record (shared by Manager and frontend)."""
    assignment = Assignment(
        assignment_id=f"asg-{next(_assignment_ids):04d}",
        client_ip=client_ip,
        chain=chain,
        selector=selector or TrafficSelector.all_traffic(),
        schedule=schedule or TimeSchedule.always(),
        station_name=station_name,
        requested_at=now,
    )
    assignment.station_history.append(station_name)
    return assignment


def track_client_event(owner, event: ClientEvent) -> None:
    """Client-event bookkeeping and roaming triggers, shared by every
    Manager flavour.

    ``owner`` is any object with the Manager's client-tracking surface
    (``client_names``, ``client_locations``, ``assignments_for_client``,
    ``roaming``, ``_client_event_listeners``): a plain :class:`GNFManager`,
    one of its shards (where ``roaming`` is None, so only the directory is
    maintained), or the sharded frontend (which owns the *global* directory
    and the roaming hook).  Keeping this in one place is what guarantees a
    sharded run makes exactly the same migration decisions as an unsharded
    one -- the digest-invariance the E10 matrix asserts.
    """
    owner.client_names[event.client_ip] = event.client_name
    previous_station = owner.client_locations.get(event.client_ip)
    if event.event == "connected":
        owner.client_locations[event.client_ip] = event.station_name
        if owner.roaming is not None:
            for assignment in owner.assignments_for_client(event.client_ip):
                if (
                    assignment.state in (AssignmentState.ACTIVE, AssignmentState.MIGRATING)
                    and assignment.station_name != event.station_name
                ):
                    owner.roaming.handle_client_connected(assignment, event)
                elif (
                    assignment.state is AssignmentState.ACTIVE
                    and assignment.station_name == event.station_name
                ):
                    # The client came back to the station already hosting its
                    # chain: nothing migrates, but roaming state staged while
                    # it was away (captured exports, speculative replicas)
                    # must be dropped or it leaks on shuttling clients.
                    owner.roaming.handle_client_reconnected(assignment, event)
    elif event.event == "disconnected":
        if previous_station == event.station_name:
            owner.client_locations.pop(event.client_ip, None)
        if owner.roaming is not None:
            for assignment in owner.assignments_for_client(event.client_ip):
                if assignment.state is AssignmentState.ACTIVE and assignment.station_name == event.station_name:
                    owner.roaming.handle_client_disconnected(assignment, event)
    for listener in owner._client_event_listeners:
        listener(event)


def segment_deployment_id(assignment_id: str, index: int) -> str:
    """Agent-side deployment id of remote segment ``index`` (>= 1)."""
    return f"{assignment_id}::seg{index}"


def upgrade_staging_id(assignment_id: str) -> str:
    """Agent-side deployment id of an assignment's staged replacement chain.

    A bundle upgrade boots the new chain version *next to* the live one
    (unsteered) under this id, then re-keys it to ``assignment_id`` at
    cutover -- the same namespacing trick split embeddings use for their
    remote segments.
    """
    return f"{assignment_id}::upgrade"


def dispatch_remote_segments(owner, assignment: Assignment, finished) -> None:
    """Deploy ``assignment.segments[1:]`` on their stations.

    Remote segments boot *without* steering rules: the client is not
    attached to those stations, so the segment must not claim their
    cell/uplink steering.  ``owner`` must hold network-wide ``agent()`` /
    ``channels`` (a plain Manager, or the sharded frontend -- shards only
    see their own band); ``finished`` is the assignment-owning Manager's
    ``_deployment_finished``, reported back over the segment's own channel.
    """
    chains = assignment.segment_chains()
    for index in range(1, len(assignment.segments)):
        segment = assignment.segments[index]
        agent = owner.agent(segment.station_name)
        channel = owner.channels[segment.station_name]

        def segment_complete(deployment, success: bool, detail: str, _channel=channel) -> None:
            _channel.call(finished, assignment.assignment_id, success, detail, deployment)

        channel.call(
            agent.deploy_chain,
            segment_deployment_id(assignment.assignment_id, index),
            assignment.client_ip,
            chains[index],
            assignment.selector,
            None,
            segment_complete,
            False,
        )


def teardown_remote_segments(owner, assignment: Assignment) -> None:
    """Remove every remote segment's containers (detach / failure path)."""
    for index in range(1, len(assignment.segments)):
        segment = assignment.segments[index]
        agent = owner.agents.get(segment.station_name)
        channel = owner.channels.get(segment.station_name)
        if agent is not None and channel is not None:
            channel.call(
                agent.remove_chain, segment_deployment_id(assignment.assignment_id, index)
            )


class GNFManager:
    """The central GNF controller.

    One ``GNFManager`` serves a set of registered stations: it owns the
    attach/detach API, tracks client locations from Agent-reported events,
    monitors Agent health and resource hotspots from heartbeats, collects NF
    notifications and drives time-scheduled activation.  In the default
    deployment it is *the* Manager and serves every station; in a sharded
    deployment (:class:`~repro.core.sharding.ShardedManager`) each instance
    is one region shard restricted to a contiguous band of stations, with
    the frontend handling global placement, roaming and cross-shard
    handoffs (:meth:`release_assignment` / :meth:`adopt_assignment`).
    """

    def __init__(
        self,
        simulator: Simulator,
        repository: Optional[NFRepository] = None,
        topology: Optional[EdgeTopology] = None,
        placement: Optional[PlacementStrategy] = None,
        heartbeat_timeout_s: float = 10.0,
        placement_engine: Optional[PlacementEngine] = None,
    ) -> None:
        self.simulator = simulator
        self.repository = repository or NFRepository.with_default_catalog()
        self.topology = topology
        # The placement subsystem: ``placement`` keeps the historical
        # strategy-object knob; a fully configured engine (admission control,
        # custom pending-commitment TTL) can be passed instead.
        self.placement_engine = placement_engine or PlacementEngine(
            simulator, strategy=placement, repository=self.repository
        )
        self.placement_engine.bind(
            views=self.station_views,
            on_admit=self._deploy_queued_assignment,
            on_timeout=self._fail_queued_assignment,
            locate=lambda client_ip: self.client_locations.get(client_ip),
        )
        self.agents: Dict[str, GNFAgent] = {}
        self.channels: Dict[str, ControlChannel] = {}
        self.assignments: Dict[str, Assignment] = {}
        self.client_locations: Dict[str, str] = {}
        self.client_names: Dict[str, str] = {}
        self.last_heartbeat: Dict[str, AgentHeartbeat] = {}
        self.health = HealthMonitor(heartbeat_timeout_s=heartbeat_timeout_s)
        self.hotspots = HotspotDetector()
        self.notifications = NotificationCenter()
        self.scheduler = NFScheduler(
            simulator,
            enable_callback=self._enable_assignment,
            disable_callback=self._disable_assignment,
        )
        self.roaming: Optional["RoamingCoordinator"] = None
        self._client_event_listeners: List[ClientEventListener] = []
        # Split-embedding hooks: a region shard only holds channels for its
        # own station band, so the sharded frontend overrides these with its
        # network-wide dispatch/teardown.  None = this Manager is global.
        self.remote_segment_dispatcher: Optional[Callable[[Assignment], None]] = None
        self.remote_segment_teardown: Optional[Callable[[Assignment], None]] = None
        self.heartbeats_processed = 0
        self.client_events_processed = 0

    @property
    def placement(self) -> PlacementStrategy:
        """The active placement strategy (delegates to the engine)."""
        return self.placement_engine.strategy

    @placement.setter
    def placement(self, strategy: PlacementStrategy) -> None:
        self.placement_engine.strategy = strategy

    # --------------------------------------------------------- registration

    def register_agent(
        self,
        agent: GNFAgent,
        control_latency_s: Optional[float] = None,
        sink_factory: Optional[Callable[[ControlChannel], tuple]] = None,
    ) -> ControlChannel:
        """Connect an Agent to the Manager over a latency-modelled channel.

        By default the Agent's upstream senders deliver each message over
        the channel as its own simulator event (``channel.sender``).  A
        sharded frontend passes ``sink_factory(channel)`` returning custom
        ``(heartbeat, event, notification)`` senders -- typically bus sinks
        that coalesce messages per delivery tick.
        """
        station_name = agent.station.name
        if control_latency_s is None:
            if self.topology is not None and station_name in self.topology.stations:
                control_latency_s = self.topology.control_latency(station_name)
            else:
                control_latency_s = 0.01
        channel = ControlChannel(self.simulator, latency_s=control_latency_s, name=f"ctl-{station_name}")
        self.agents[station_name] = agent
        self.channels[station_name] = channel
        if sink_factory is not None:
            heartbeat_sink, event_sink, notification_sink = sink_factory(channel)
        else:
            heartbeat_sink = channel.sender(self.receive_heartbeat)
            event_sink = channel.sender(self.receive_client_event)
            notification_sink = channel.sender(self.receive_notification)
        agent.connect_to_manager(
            channel,
            heartbeat_sink=heartbeat_sink,
            event_sink=event_sink,
            notification_sink=notification_sink,
        )
        self.health.register(station_name, self.simulator.now)
        agent.start()
        return channel

    def agent(self, station_name: str) -> GNFAgent:
        try:
            return self.agents[station_name]
        except KeyError as exc:
            raise UnknownAgentError(station_name) from exc

    def start(self) -> "GNFManager":
        """Start the schedule evaluator (agents start when registered)."""
        self.scheduler.start()
        return self

    # ------------------------------------------------------------ attach API

    def attach_chain(
        self,
        client_ip: str,
        chain: ServiceChain,
        selector: Optional[TrafficSelector] = None,
        schedule: Optional[TimeSchedule] = None,
        station_name: Optional[str] = None,
    ) -> Assignment:
        """Associate a chain with a subset of the client's traffic.

        The chain is placed by the :class:`PlacementEngine` (the paper's
        default strategy: the station the client is attached to) and the
        deployment is dispatched to that station's Agent.  With admission
        control enabled, a chain aimed at a saturated station is queued
        (assignment stays ``PENDING`` until capacity frees) or failed
        outright when queueing is off -- inspect ``assignment.state``.
        """
        client_station = station_name or self.client_locations.get(client_ip)
        if client_station is None:
            raise UnknownClientError(
                f"client {client_ip!r} has no known location; pass station_name explicitly"
            )
        decision = self.placement_engine.place(
            client_station, self.station_views(client_station), chain, client_ip=client_ip
        )
        assignment = make_assignment(
            self.simulator.now, client_ip, chain, selector, schedule, decision.station_name
        )
        self.assignments[assignment.assignment_id] = assignment
        if decision.admitted:
            assignment.apply_segments(decision.segments)
            self._dispatch_deployment(assignment)
            self.scheduler.add(assignment.assignment_id, assignment.schedule, currently_active=True)
        elif decision.queued:
            self.placement_engine.enqueue(assignment, client_station, chain)
        else:
            assignment.state = AssignmentState.FAILED
            assignment.failure_reason = decision.reason
        return assignment

    def accept_placed_assignment(self, assignment: Assignment) -> None:
        """Register and deploy an assignment placed (and admitted) elsewhere.

        Used by the sharded frontend, which runs global placement/admission
        itself and hands each admitted assignment to the shard owning the
        chosen station.
        """
        self.assignments[assignment.assignment_id] = assignment
        self._dispatch_deployment(assignment)
        self.scheduler.add(assignment.assignment_id, assignment.schedule, currently_active=True)

    def _deploy_queued_assignment(self, assignment: Assignment, decision: PlacementDecision) -> None:
        """Engine callback: a queued placement finally found capacity."""
        if assignment.state is not AssignmentState.PENDING:
            return  # detached (or failed) while waiting in the queue
        assignment.station_name = decision.station_name
        assignment.station_history[-1] = decision.station_name
        assignment.apply_segments(decision.segments)
        self._dispatch_deployment(assignment)
        self.scheduler.add(assignment.assignment_id, assignment.schedule, currently_active=True)

    def _fail_queued_assignment(self, assignment: Assignment, reason: str) -> None:
        """Engine callback: a queued placement timed out."""
        if assignment.state is AssignmentState.PENDING:
            assignment.state = AssignmentState.FAILED
            assignment.failure_reason = reason

    def attach_nf(
        self,
        client_ip: str,
        nf_type: str,
        config: Optional[Dict[str, object]] = None,
        selector: Optional[TrafficSelector] = None,
        schedule: Optional[TimeSchedule] = None,
        station_name: Optional[str] = None,
    ) -> Assignment:
        """Associate a single NF with a client (convenience wrapper)."""
        return self.attach_chain(
            client_ip,
            ServiceChain.single(nf_type, config=config),
            selector=selector,
            schedule=schedule,
            station_name=station_name,
        )

    def detach(self, assignment_id: str) -> Assignment:
        """Remove a client's chain from wherever it currently runs."""
        assignment = self._assignment(assignment_id)
        was_queued = self.placement_engine.cancel(assignment_id)
        if not was_queued:
            # Deployed (or deploying) somewhere: tear the chain down there.
            # A still-queued assignment never reached an Agent, so there is
            # nothing to remove.
            agent = self.agent(assignment.station_name)
            channel = self.channels[assignment.station_name]
            channel.call(agent.remove_chain, assignment_id)
            # A split embedding also owns containers on its remote-segment
            # stations: remove them too or a detach leaks them.
            self._teardown_remote_segments(assignment)
        assignment.state = AssignmentState.REMOVED
        self.scheduler.remove(assignment_id)
        # Release any roaming state staged for this assignment (captured NF
        # exports, speculative replicas) so a detach can never leak it.
        if self.roaming is not None:
            self.roaming.assignment_released(assignment_id)
        return assignment

    def _dispatch_deployment(
        self,
        assignment: Assignment,
        nf_states: Optional[List[Dict[str, object]]] = None,
    ) -> None:
        agent = self.agent(assignment.station_name)
        channel = self.channels[assignment.station_name]
        assignment.state = AssignmentState.DEPLOYING
        assignment.segments_pending = max(1, len(assignment.segments))

        def deployment_complete(deployment: ChainDeployment, success: bool, detail: str) -> None:
            # Report back to the Manager over the control channel.
            channel.call(self._deployment_finished, assignment.assignment_id, success, detail, deployment)

        channel.call(
            agent.deploy_chain,
            assignment.assignment_id,
            assignment.client_ip,
            assignment.head_chain(),
            assignment.selector,
            nf_states,
            deployment_complete,
        )
        if assignment.is_split:
            if self.remote_segment_dispatcher is not None:
                self.remote_segment_dispatcher(assignment)
            else:
                dispatch_remote_segments(self, assignment, self._deployment_finished)

    def _deployment_finished(
        self,
        assignment_id: str,
        success: bool,
        detail: str,
        deployment: ChainDeployment,
    ) -> None:
        assignment = self.assignments.get(assignment_id)
        if assignment is None or assignment.state is AssignmentState.REMOVED:
            # A detach raced the deployment: the boot was cancelled (or its
            # chain already torn down); never resurrect the assignment.
            return
        if assignment.state is AssignmentState.FAILED:
            # A sibling segment already failed the assignment (and tore every
            # part down); late reports must not flip the state back.
            return
        if not success:
            assignment.state = AssignmentState.FAILED
            assignment.failure_reason = detail
            if assignment.is_split:
                # A chain with a hole in it must not keep half its NFs
                # running: remove the head and every remote segment (parts
                # still booting roll back via their cancelled flag).
                self._teardown_split_assignment(assignment)
            return
        assignment.segments_pending = max(0, assignment.segments_pending - 1)
        if assignment.segments_pending == 0 and assignment.state is AssignmentState.DEPLOYING:
            assignment.state = AssignmentState.ACTIVE
            assignment.active_at = self.simulator.now

    def _teardown_split_assignment(self, assignment: Assignment) -> None:
        agent = self.agents.get(assignment.station_name)
        if agent is not None:
            self.channels[assignment.station_name].call(
                agent.remove_chain, assignment.assignment_id
            )
        self._teardown_remote_segments(assignment)

    def _teardown_remote_segments(self, assignment: Assignment) -> None:
        if not assignment.is_split:
            return
        if self.remote_segment_teardown is not None:
            self.remote_segment_teardown(assignment)
        else:
            teardown_remote_segments(self, assignment)

    # ----------------------------------------------------- scheduler hooks

    def _enable_assignment(self, assignment_id: str) -> None:
        assignment = self.assignments.get(assignment_id)
        if assignment is None or assignment.state is AssignmentState.REMOVED:
            return
        agent = self.agents.get(assignment.station_name)
        if agent is not None:
            self.channels[assignment.station_name].call(agent.set_chain_active, assignment_id, True)

    def _disable_assignment(self, assignment_id: str) -> None:
        assignment = self.assignments.get(assignment_id)
        if assignment is None or assignment.state is AssignmentState.REMOVED:
            return
        agent = self.agents.get(assignment.station_name)
        if agent is not None:
            self.channels[assignment.station_name].call(agent.set_chain_active, assignment_id, False)

    # ------------------------------------------------------ bundle upgrades

    def find_assignment(self, assignment_id: str) -> Optional[Assignment]:
        """Non-raising assignment lookup (upgrade orchestrator polling)."""
        return self.assignments.get(assignment_id)

    def stage_chain_upgrade(
        self,
        assignment_id: str,
        new_chain: ServiceChain,
        on_complete: Callable[[bool, str], None],
    ) -> None:
        """Boot the replacement chain next to the live one, unsteered.

        The staged deployment lives under :func:`upgrade_staging_id` on the
        assignment's home station; ``on_complete(success, detail)`` reports
        back over the control channel once it is booted (or failed).
        """
        assignment = self.assignments.get(assignment_id)
        if assignment is None:
            self.simulator.schedule(0.0, on_complete, False, "unknown assignment")
            return
        agent = self.agent(assignment.station_name)
        channel = self.channels[assignment.station_name]

        def staged_complete(deployment: ChainDeployment, success: bool, detail: str) -> None:
            channel.call(on_complete, success, detail)

        channel.call(
            agent.deploy_chain,
            upgrade_staging_id(assignment_id),
            assignment.client_ip,
            new_chain,
            assignment.selector,
            None,
            staged_complete,
            False,
        )

    def suspend_chain_upgrade(
        self, assignment_id: str, on_suspended: Callable[[float], None]
    ) -> None:
        """Pull the live chain's steering (stateful upgrade freeze start)."""
        assignment = self.assignments.get(assignment_id)
        if assignment is None:
            return
        agent = self.agents.get(assignment.station_name)
        if agent is not None:
            self.channels[assignment.station_name].call(
                agent.suspend_chain, assignment_id, on_suspended
            )

    def cutover_chain_upgrade(
        self,
        assignment_id: str,
        new_chain: ServiceChain,
        final_states: Optional[List[Dict[str, object]]],
        on_done: Callable[[bool, str], None],
    ) -> None:
        """Swap the staged replacement in for the live chain atomically.

        The replacement inherits the steering state the scheduler last
        reconciled for this assignment, so an upgrade racing a disable
        window comes up unsteered.  On success the Manager's assignment
        record tracks the new chain; the result is reported back over the
        channel either way.
        """
        assignment = self.assignments.get(assignment_id)
        if assignment is None:
            self.simulator.schedule(0.0, on_done, False, "unknown assignment")
            return
        agent = self.agent(assignment.station_name)
        channel = self.channels[assignment.station_name]
        desired_active = self.scheduler.currently_active(assignment_id)

        def finished(success: bool, detail: str) -> None:
            if success:
                assignment.chain = new_chain
            channel.call(on_done, success, detail)

        channel.call(
            agent.cutover_chain,
            assignment_id,
            upgrade_staging_id(assignment_id),
            final_states,
            desired_active,
            finished,
        )

    def abort_chain_upgrade(self, assignment_id: str) -> None:
        """Tear down a staged replacement that will not be cut over."""
        assignment = self.assignments.get(assignment_id)
        if assignment is None:
            return
        agent = self.agents.get(assignment.station_name)
        if agent is not None:
            self.channels[assignment.station_name].call(
                agent.remove_chain, upgrade_staging_id(assignment_id)
            )

    # ----------------------------------------------------- agent -> manager

    def receive_heartbeat(self, heartbeat: AgentHeartbeat) -> None:
        """Process one Agent heartbeat (liveness, hotspots, latest stats)."""
        self.heartbeats_processed += 1
        self.last_heartbeat[heartbeat.station_name] = heartbeat
        self.health.record_heartbeat(heartbeat.station_name, self.simulator.now)
        self.hotspots.observe(heartbeat.station_name, self.simulator.now, heartbeat.resources)

    def receive_heartbeat_batch(self, heartbeats: List[AgentHeartbeat]) -> None:
        """Process a coalesced burst of heartbeats delivered in one tick.

        Semantically identical to calling :meth:`receive_heartbeat` once per
        message at the same simulated instant -- this is the ControlBus entry
        point, kept separate so a batch pays the dispatch overhead once.
        """
        self.heartbeats_processed += len(heartbeats)
        now = self.simulator.now
        last_heartbeat = self.last_heartbeat
        record_heartbeat = self.health.record_heartbeat
        observe = self.hotspots.observe
        for heartbeat in heartbeats:
            station_name = heartbeat.station_name
            last_heartbeat[station_name] = heartbeat
            record_heartbeat(station_name, now)
            observe(station_name, now, heartbeat.resources)

    def receive_client_event(self, event: ClientEvent) -> None:
        """Process a client (dis)connection reported by an Agent."""
        self.client_events_processed += 1
        track_client_event(self, event)

    def receive_notification(self, message: NFNotificationMessage) -> None:
        """Store an NF notification relayed by an Agent."""
        self.notifications.publish(
            ProviderNotification(
                received_at=self.simulator.now,
                raised_at=message.time,
                station_name=message.station_name,
                nf_name=message.nf_name,
                severity=message.severity,
                message=message.message,
                details=dict(message.details),
            )
        )

    def receive_notification_batch(self, messages: List[NFNotificationMessage]) -> None:
        """Store a coalesced burst of NF notifications (ControlBus entry point)."""
        now = self.simulator.now
        self.notifications.publish_batch(
            [
                ProviderNotification(
                    received_at=now,
                    raised_at=message.time,
                    station_name=message.station_name,
                    nf_name=message.nf_name,
                    severity=message.severity,
                    message=message.message,
                    details=dict(message.details),
                )
                for message in messages
            ]
        )

    def add_client_event_listener(self, listener: ClientEventListener) -> None:
        self._client_event_listeners.append(listener)

    # ----------------------------------------------------- sharding hooks

    def assignment_station_changed(self, assignment: Assignment, old_station: str) -> None:
        """Hook invoked by the roaming coordinator after a migration moved
        ``assignment`` to a new home station.

        A single Manager has nothing to do -- all its state is keyed by
        assignment id, not station.  The sharded frontend overrides this to
        hand the assignment off between region shards.
        """

    def release_assignment(self, assignment_id: str) -> bool:
        """Drop an assignment from this shard's tables for a cross-shard
        handoff; returns the schedule-active flag the adopting shard must
        resume from."""
        self.assignments.pop(assignment_id, None)
        active = self.scheduler.pop(assignment_id)
        return True if active is None else active

    def adopt_assignment(self, assignment: Assignment, schedule_active: bool = True) -> None:
        """Take ownership of an assignment handed off by another shard."""
        self.assignments[assignment.assignment_id] = assignment
        self.scheduler.add(assignment.assignment_id, assignment.schedule, currently_active=schedule_active)

    # -------------------------------------------------------------- queries

    def _assignment(self, assignment_id: str) -> Assignment:
        try:
            return self.assignments[assignment_id]
        except KeyError as exc:
            raise UnknownAssignmentError(assignment_id) from exc

    def assignments_for_client(self, client_ip: str) -> List[Assignment]:
        return [a for a in self.assignments.values() if a.client_ip == client_ip]

    def station_views(self, client_station: Optional[str] = None) -> List[StationView]:
        """What the placement strategy sees for every registered station.

        Resource figures come from the station's latest heartbeat (the live
        runtime before the first one arrives); chain density and uplink
        utilization are read from the Agent and topology directly.  Views
        are value objects -- strategies may score them freely.
        """
        views: List[StationView] = []
        now = self.simulator.now
        for station_name, agent in self.agents.items():
            heartbeat = self.last_heartbeat.get(station_name)
            resources = heartbeat.resources if heartbeat else agent.runtime.utilization()
            control_latency = self.channels[station_name].latency_s
            if self.topology is not None and client_station is not None:
                client_latency = self.topology.station_to_station_latency(client_station, station_name)
            else:
                client_latency = 0.0 if station_name == client_station else 0.01
            uplink_utilization = 0.0
            if self.topology is not None and now > 0:
                uplink = self.topology.uplink_links.get(station_name)
                if uplink is not None and uplink.bandwidth_bps > 0:
                    uplink_utilization = min(
                        1.0, uplink.total_stats.tx_bytes * 8 / (uplink.bandwidth_bps * now)
                    )
            views.append(
                StationView(
                    name=station_name,
                    free_memory_mb=float(resources.get("free_memory_mb", 0.0)),
                    memory_utilization=float(resources.get("memory_utilization", 0.0)),
                    running_nfs=int(resources.get("containers_running", 0)),
                    control_latency_s=control_latency,
                    client_latency_s=client_latency,
                    allocatable_memory_mb=float(resources.get("allocatable_memory_mb", 0.0)),
                    containers_total=int(resources.get("containers_total", 0)),
                    chains=len(agent.deployments),
                    cpu_seconds=float(resources.get("total_cpu_seconds", 0.0)),
                    uplink_utilization=uplink_utilization,
                    admission_failures=int(resources.get("admission_failures", 0)),
                )
            )
        return views

    def overview(self) -> Dict[str, object]:
        """The network-wide summary the UI's landing page shows."""
        now = self.simulator.now
        active_assignments = [
            a for a in self.assignments.values() if a.state is AssignmentState.ACTIVE
        ]
        total_nfs = sum(len(a.chain) for a in active_assignments)
        return {
            "time": now,
            "online_stations": self.health.online_stations(now),
            "offline_stations": self.health.offline_stations(now),
            "connected_clients": sorted(self.client_locations),
            "assignments": len(self.assignments),
            "active_assignments": len(active_assignments),
            "enabled_nfs": total_nfs,
            "hotspot_stations": self.hotspots.hotspot_stations(),
            "notifications": self.notifications.summary(),
            "heartbeats_processed": self.heartbeats_processed,
        }

    def control_plane_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-station control-channel statistics (benchmark E7)."""
        return {name: channel.stats() for name, channel in self.channels.items()}
