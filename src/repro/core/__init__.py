"""The GNF framework itself (the paper's contribution).

* :mod:`repro.core.manager` -- the central Manager (attach/detach API,
  monitoring, hotspot detection, notifications).
* :mod:`repro.core.agent` -- the per-station Agent (container lifecycle,
  veth/flow-rule wiring, client events, heartbeats).
* :mod:`repro.core.ui` -- the operator dashboard over the Manager API.
* :mod:`repro.core.roaming` -- NF migration that follows roaming clients
  (cold / stateful / pre-copy strategies).
* :mod:`repro.core.repository` -- the central NF image catalogue.
* :mod:`repro.core.chain` / :mod:`repro.core.policy` -- service chains and
  per-client traffic selectors.
* :mod:`repro.core.placement` -- the placement subsystem: strategies
  (closest agent, least-loaded, latency-weighted, bin-packing, core...),
  the PlacementEngine (admission control + queueing) and the NFAutoscaler.
* :mod:`repro.core.sharding` -- the sharded control plane (ShardedManager
  frontend, ControlBus message coalescing, cross-shard handoffs).
* :mod:`repro.core.scheduler` -- time-scheduled NF activation.
* :mod:`repro.core.bundles` -- versioned service-bundle templates (multi-
  slice NF graphs with per-slice SLOs) and the rolling-upgrade
  orchestrator that walks live instances between versions with zero
  coverage gap.
* :mod:`repro.core.monitoring` / :mod:`repro.core.notifications` -- health,
  hotspots and provider notifications.
* :mod:`repro.core.testbed` -- one-call assembly of a complete emulated GNF
  deployment (topology + wireless + Manager + Agents + UI).
"""

from repro.core.agent import ChainDeployment, DeployedNF, GNFAgent
from repro.core.bundles import (
    BundleCatalogue,
    BundleError,
    BundleNF,
    BundleSpec,
    BundleUpgradeOrchestrator,
    SliceSpec,
    default_catalogue,
)
from repro.core.api import (
    AgentHeartbeat,
    ClientEvent,
    ControlChannel,
    DeployChainRequest,
    DeployChainResponse,
    NFNotificationMessage,
    RegisterAgent,
    RemoveChainRequest,
)
from repro.core.chain import NFSpec, ServiceChain
from repro.core.errors import (
    CatalogError,
    DeploymentError,
    GNFError,
    MigrationError,
    ScheduleError,
    UnknownAgentError,
    UnknownAssignmentError,
    UnknownClientError,
)
from repro.core.manager import Assignment, AssignmentState, GNFManager
from repro.core.monitoring import HealthMonitor, Hotspot, HotspotDetector
from repro.core.notifications import NotificationCenter, ProviderNotification
from repro.core.placement import (
    AdmissionPolicy,
    BinPackingPlacement,
    ClosestAgentPlacement,
    CorePlacement,
    LatencyAwarePlacement,
    LatencyWeightedPlacement,
    LeastLoadedPlacement,
    LoadAwarePlacement,
    NFAutoscaler,
    PlacementDecision,
    PlacementEngine,
    ScaleEvent,
    StationView,
    make_strategy,
)
from repro.core.policy import TrafficSelector
from repro.core.repository import CatalogEntry, NFRepository
from repro.core.roaming import MigrationEngine, MigrationRecord, RoamingCoordinator
from repro.core.scheduler import NFScheduler, ScheduleWindow, TimeSchedule
from repro.core.sharding import ControlBus, ShardedManager, ShardHandoff, StationShardMap
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.core.ui import GNFDashboard

__all__ = [
    "GNFAgent",
    "ChainDeployment",
    "DeployedNF",
    "GNFManager",
    "ShardedManager",
    "ControlBus",
    "StationShardMap",
    "ShardHandoff",
    "Assignment",
    "AssignmentState",
    "GNFDashboard",
    "RoamingCoordinator",
    "MigrationEngine",
    "MigrationRecord",
    "NFRepository",
    "CatalogEntry",
    "ServiceChain",
    "NFSpec",
    "TrafficSelector",
    "TimeSchedule",
    "ScheduleWindow",
    "NFScheduler",
    "BundleCatalogue",
    "BundleError",
    "BundleNF",
    "BundleSpec",
    "BundleUpgradeOrchestrator",
    "SliceSpec",
    "default_catalogue",
    "ClosestAgentPlacement",
    "LoadAwarePlacement",
    "LatencyAwarePlacement",
    "LeastLoadedPlacement",
    "LatencyWeightedPlacement",
    "BinPackingPlacement",
    "CorePlacement",
    "PlacementEngine",
    "PlacementDecision",
    "AdmissionPolicy",
    "NFAutoscaler",
    "ScaleEvent",
    "StationView",
    "make_strategy",
    "HealthMonitor",
    "HotspotDetector",
    "Hotspot",
    "NotificationCenter",
    "ProviderNotification",
    "ControlChannel",
    "AgentHeartbeat",
    "ClientEvent",
    "NFNotificationMessage",
    "RegisterAgent",
    "DeployChainRequest",
    "DeployChainResponse",
    "RemoveChainRequest",
    "GNFTestbed",
    "TestbedConfig",
    "GNFError",
    "UnknownAgentError",
    "UnknownClientError",
    "UnknownAssignmentError",
    "DeploymentError",
    "MigrationError",
    "CatalogError",
    "ScheduleError",
]
