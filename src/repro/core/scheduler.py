"""Time-based NF scheduling.

Section 3: "New NFs can be attached in seconds or removed from clients as
well as scheduled to be enabled only during specific time periods."  The
:class:`NFScheduler` periodically evaluates each assignment's
:class:`TimeSchedule` and asks the Manager to enable or disable the
assignment as windows open and close.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ScheduleError
from repro.netem.simulator import PeriodicTask, Simulator


@dataclass(frozen=True)
class ScheduleWindow:
    """A half-open activation window ``[start_s, end_s)`` in simulated time."""

    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ScheduleError(f"window end ({self.end_s}) must be after start ({self.start_s})")

    def contains(self, now: float) -> bool:
        return self.start_s <= now < self.end_s


class TimeSchedule:
    """When an assignment should be active.

    ``always`` schedules are active forever; ``windows`` schedules are active
    only inside the listed windows; ``daily`` schedules repeat a
    seconds-of-day window with a configurable day length (useful to compress
    a day into a short simulation).  A daily window whose start is *after*
    its end wraps around the day boundary -- e.g. ``(22h, 02h)`` is a
    night-time window active from 22:00 until 02:00 the next day.
    """

    def __init__(
        self,
        windows: Sequence[ScheduleWindow] = (),
        daily_window: Optional[Tuple[float, float]] = None,
        day_length_s: float = 86_400.0,
    ) -> None:
        self.windows: List[ScheduleWindow] = list(windows)
        self.daily_window = daily_window
        if day_length_s <= 0:
            raise ScheduleError("day_length_s must be positive")
        self.day_length_s = day_length_s
        if daily_window is not None:
            start, end = daily_window
            if not (0 <= start <= day_length_s and 0 <= end <= day_length_s) or start == end:
                raise ScheduleError(f"invalid daily window {daily_window!r} for day length {day_length_s}")

    @classmethod
    def always(cls) -> "TimeSchedule":
        return cls()

    @classmethod
    def between(cls, start_s: float, end_s: float) -> "TimeSchedule":
        return cls(windows=[ScheduleWindow(start_s, end_s)])

    @classmethod
    def daily(cls, start_of_day_s: float, end_of_day_s: float, day_length_s: float = 86_400.0) -> "TimeSchedule":
        """A window repeated every day; ``start > end`` wraps past midnight."""
        return cls(daily_window=(start_of_day_s, end_of_day_s), day_length_s=day_length_s)

    def is_active(self, now: float) -> bool:
        """Should the assignment be enabled at simulated time ``now``?"""
        if not self.windows and self.daily_window is None:
            return True
        if any(window.contains(now) for window in self.windows):
            return True
        if self.daily_window is not None:
            second_of_day = now % self.day_length_s
            start, end = self.daily_window
            if start < end:
                return start <= second_of_day < end
            # Wrapping window (e.g. 22:00 -> 02:00): active on either side of
            # the day boundary.
            return second_of_day >= start or second_of_day < end
        return False


class NFScheduler:
    """Drives assignment enable/disable transitions from their schedules.

    One scheduler serves one Manager (each shard of a sharded deployment
    owns its own; the frontend aggregates them).  Every
    ``check_interval_s`` it reconciles each tracked assignment's
    :class:`TimeSchedule` against its last known activation state and calls
    ``enable_callback(assignment_id)`` / ``disable_callback(assignment_id)``
    on the edges only -- the Manager maps those onto
    ``GNFAgent.set_chain_active``, which toggles traffic steering without
    touching the containers.  ``pop`` extracts an assignment's activation
    flag for cross-shard handoffs so the adopting scheduler resumes from
    the same state instead of re-deriving (and double-counting) the
    transition.  ``transitions`` counts the edges driven, which the
    scenario digests use to pin schedule behaviour.
    """

    def __init__(
        self,
        simulator: Simulator,
        enable_callback: Callable[[str], None],
        disable_callback: Callable[[str], None],
        check_interval_s: float = 1.0,
    ) -> None:
        self.simulator = simulator
        self.enable_callback = enable_callback
        self.disable_callback = disable_callback
        self.check_interval_s = check_interval_s
        self._schedules: Dict[str, TimeSchedule] = {}
        self._active: Dict[str, bool] = {}
        self._task: Optional[PeriodicTask] = None
        self.transitions = 0

    # ----------------------------------------------------------- membership

    def add(self, assignment_id: str, schedule: TimeSchedule, currently_active: bool) -> None:
        self._schedules[assignment_id] = schedule
        self._active[assignment_id] = currently_active

    def remove(self, assignment_id: str) -> None:
        self._schedules.pop(assignment_id, None)
        self._active.pop(assignment_id, None)

    def pop(self, assignment_id: str) -> Optional[bool]:
        """Stop tracking an assignment; returns its last known active flag.

        Used by cross-shard handoffs: the adopting shard's scheduler must
        resume from the same activation state instead of re-deriving it (and
        counting a spurious transition).  ``None`` means the assignment was
        not tracked here.
        """
        self._schedules.pop(assignment_id, None)
        return self._active.pop(assignment_id, None)

    def tracked(self) -> List[str]:
        return sorted(self._schedules)

    def currently_active(self, assignment_id: str) -> bool:
        """The scheduler's last reconciled activation state for an assignment.

        Untracked assignments (no schedule) are always active.  The bundle
        upgrade orchestrator reads this at cutover time so a replacement
        chain inherits exactly the steering state the schedule asked for --
        an upgrade racing a disable window must come up unsteered.
        """
        return self._active.get(assignment_id, True)

    # -------------------------------------------------------------- control

    def start(self) -> "NFScheduler":
        if self._task is None:
            self._task = self.simulator.every(self.check_interval_s, self.evaluate)
        return self

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def evaluate(self) -> None:
        """One scheduling pass: reconcile desired vs actual activation."""
        now = self.simulator.now
        for assignment_id, schedule in self._schedules.items():
            desired = schedule.is_active(now)
            actual = self._active.get(assignment_id, False)
            if desired == actual:
                continue
            self._active[assignment_id] = desired
            self.transitions += 1
            if desired:
                self.enable_callback(assignment_id)
            else:
                self.disable_callback(assignment_id)
