"""The placement subsystem: strategies, admission control and autoscaling.

Section 3: "the Manager notifies the closest Agent".  The original
reproduction kept that one-liner pluggable so benchmark E4 could ablate the
choice; this module promotes placement into a full subsystem:

* :class:`StationView` -- the live telemetry snapshot a strategy scores
  (memory, container slots, chain density, uplink utilization).
* Pluggable :class:`PlacementStrategy` objects.  The paper's
  :class:`ClosestAgentPlacement` stays the default; the load-aware family
  (:class:`LeastLoadedPlacement`, :class:`LatencyWeightedPlacement`,
  :class:`BinPackingPlacement`) prefers the client's own station until it is
  actually loaded, so an unloaded deployment behaves exactly like the paper
  regardless of the configured strategy (the digest-invariance the E10
  matrix asserts) and the strategies only diverge under pressure -- which
  benchmark E11 measures with the ``hotspot-stadium`` scenario.
* :class:`PlacementEngine` -- the Manager-facing facade: runs the strategy
  over pending-commitment-adjusted views, applies :class:`AdmissionPolicy`
  (reject or queue deployments aimed at saturated stations, retry queued
  ones as capacity frees, time them out), and keeps the placement counters.
* :class:`NFAutoscaler` -- watches per-station utilization and scales hot
  chains horizontally: replica chains (fronted by a ``load-balancer`` NF)
  boot on nearby under-loaded stations, are drained again when the hotspot
  cools, and -- when a chain is already at its replica budget -- whole
  assignments are rebalanced away through the existing
  :class:`~repro.core.migration.MigrationEngine`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Protocol

from repro.core.api import ClientEvent
from repro.core.chain import NFSpec, ServiceChain
from repro.core.errors import DeploymentError
from repro.netem.simulator import PeriodicTask, Simulator


@dataclass
class StationView:
    """What the Manager knows about one station when placing an NF.

    Views are produced by ``GNFManager.station_views()`` (merged across
    shards by a ``ShardedManager``) from the latest Agent heartbeat, falling
    back to the live runtime when no heartbeat has arrived yet.  All fields
    beyond the original six are optional so hand-built views in tests and
    benchmarks keep working.

    :ivar name: station name (``station-1`` ...).
    :ivar free_memory_mb: memory still allocatable to NF containers.
    :ivar memory_utilization: allocated / allocatable fraction (0..1).
    :ivar running_nfs: running NF containers (the "container slots" in use).
    :ivar control_latency_s: one-way Manager->station control latency.
    :ivar client_latency_s: one-way latency from the *client's* station.
    :ivar allocatable_memory_mb: total memory the runtime may hand to NFs.
    :ivar containers_total: containers the runtime tracks (any state).
    :ivar chains: chain deployments currently hosted (chain density).
    :ivar cpu_seconds: cumulative CPU seconds charged by hosted NFs.
    :ivar uplink_utilization: lifetime-average uplink usage fraction (0..1).
    :ivar admission_failures: container admissions the runtime has refused.
    """

    name: str
    free_memory_mb: float
    memory_utilization: float
    running_nfs: int
    control_latency_s: float
    client_latency_s: float
    allocatable_memory_mb: float = 0.0
    containers_total: int = 0
    chains: int = 0
    cpu_seconds: float = 0.0
    uplink_utilization: float = 0.0
    admission_failures: int = 0

    def load_score(self) -> float:
        """Composite load in ~[0, 1.1]: memory pressure dominates, uplink
        pressure and chain density break ties between memory-similar
        stations (documented so strategy comparisons are explainable)."""
        return (
            self.memory_utilization
            + 0.1 * min(1.0, self.uplink_utilization)
            + 0.01 * self.chains
        )


class PlacementStrategy(Protocol):
    """Chooses a station for a client's chain.

    ``choose`` receives the station the client is attached to and one view
    per candidate station.  A strategy that wants the chain's estimated
    memory footprint implements ``choose_sized(client_station, candidates,
    required_mb)`` instead; the engine calls it when present.
    """

    name: str

    def choose(self, client_station: str, candidates: List[StationView]) -> str:
        """Return the chosen station name."""


def _require_candidates(candidates: List[StationView]) -> None:
    if not candidates:
        raise DeploymentError("no candidate stations")


def station_fits(
    view: StationView, required_mb: float, max_utilization: float, headroom_mb: float
) -> bool:
    """The one saturation predicate: can ``required_mb`` more land here?

    Shared by bin-packing placement and admission control so the strategy
    and the gate can never disagree about what "fits" means.
    """
    return (
        view.free_memory_mb >= required_mb + headroom_mb
        and view.memory_utilization <= max_utilization
    )


class ClosestAgentPlacement:
    """Place on the station the client is currently attached to (the paper)."""

    name = "closest-agent"

    def choose(self, client_station: str, candidates: List[StationView]) -> str:
        for candidate in candidates:
            if candidate.name == client_station:
                return client_station
        raise DeploymentError(f"client station {client_station!r} is not a known candidate")


class LoadAwarePlacement:
    """Pick the station with the most free memory within a latency budget.

    Unlike :class:`LeastLoadedPlacement` this legacy strategy never prefers
    the client's own station, so it spreads chains even on an idle
    deployment (kept for the E4 ablation).
    """

    name = "load-aware"

    def __init__(self, latency_budget_s: float = 0.02, min_free_memory_mb: float = 8.0) -> None:
        self.latency_budget_s = latency_budget_s
        self.min_free_memory_mb = min_free_memory_mb

    def choose(self, client_station: str, candidates: List[StationView]) -> str:
        _require_candidates(candidates)
        eligible = [
            candidate
            for candidate in candidates
            if candidate.client_latency_s <= self.latency_budget_s
            and candidate.free_memory_mb >= self.min_free_memory_mb
        ]
        if not eligible:
            # Relax the latency budget first but keep the memory floor: a
            # latency-miss is a degraded placement, a memory-miss is a dead
            # one.  Only when *no* station clears the floor fall back to the
            # raw candidate list (the deployment will queue or fail loudly
            # downstream instead of silently landing on a full station).
            eligible = [
                candidate
                for candidate in candidates
                if candidate.free_memory_mb >= self.min_free_memory_mb
            ] or list(candidates)
        best = min(
            eligible,
            key=lambda candidate: (-candidate.free_memory_mb, candidate.client_latency_s, candidate.name),
        )
        return best.name


class LatencyAwarePlacement:
    """Minimise latency to the client, breaking ties by free memory."""

    name = "latency-aware"

    def choose(self, client_station: str, candidates: List[StationView]) -> str:
        _require_candidates(candidates)
        best = min(candidates, key=lambda candidate: (candidate.client_latency_s, -candidate.free_memory_mb))
        return best.name


class CorePlacement:
    """Always place on a designated central station (centralised-NFV baseline)."""

    name = "core"

    def __init__(self, core_station: str) -> None:
        self.core_station = core_station

    def choose(self, client_station: str, candidates: List[StationView]) -> str:
        for candidate in candidates:
            if candidate.name == self.core_station:
                return self.core_station
        raise DeploymentError(f"core station {self.core_station!r} is not a known candidate")


class LeastLoadedPlacement:
    """Stay at the client's station until it is loaded, then spread.

    Below ``prefer_local_below`` (composite :meth:`StationView.load_score`)
    the client's own station wins -- the paper's behaviour, and what keeps
    an unloaded deployment digest-identical to ``closest-agent``.  Above it,
    the least-loaded candidate within ``latency_budget_s`` of the client is
    chosen (ties broken by latency, then name, so the choice is
    deterministic across shard counts).
    """

    name = "least-loaded"

    def __init__(self, latency_budget_s: float = 0.05, prefer_local_below: float = 0.6) -> None:
        self.latency_budget_s = latency_budget_s
        self.prefer_local_below = prefer_local_below

    def choose(self, client_station: str, candidates: List[StationView]) -> str:
        _require_candidates(candidates)
        local = next((c for c in candidates if c.name == client_station), None)
        if local is not None and local.load_score() < self.prefer_local_below:
            return client_station
        eligible = [c for c in candidates if c.client_latency_s <= self.latency_budget_s]
        pool = eligible or candidates
        best = min(pool, key=lambda c: (c.load_score(), c.client_latency_s, c.name))
        return best.name


class LatencyWeightedPlacement:
    """Minimise ``client_latency + load_weight * load_score``.

    With the default weight an off-station candidate one backhaul hop away
    (0.01 s) only wins once the local station is ~0.5 load-score units
    hotter, so light deployments keep the paper's closest-agent behaviour
    while saturated stations shed load to near neighbours first.
    """

    name = "latency-weighted"

    def __init__(self, load_weight_s: float = 0.02) -> None:
        self.load_weight_s = load_weight_s

    def choose(self, client_station: str, candidates: List[StationView]) -> str:
        _require_candidates(candidates)
        best = min(
            candidates,
            key=lambda c: (c.client_latency_s + self.load_weight_s * c.load_score(), c.name),
        )
        return best.name


class BinPackingPlacement:
    """First-fit-decreasing packing: use as few stations as possible.

    The client's station wins while the chain still fits there.  Once it is
    full, the chain is packed onto the *most* loaded station that still fits
    it (so spare stations stay empty for e.g. scheduled scale-out), falling
    back to the least-loaded station when nothing fits.  Packing is
    meaningless without a size, so only ``choose_sized`` is implemented:
    every engine dispatch goes through the sized path.  (Historically the
    plain ``choose`` assumed a zero-size chain, which admitted chains the
    chosen station could not fit.)
    """

    name = "bin-packing"

    def __init__(self, max_utilization: float = 0.85, headroom_mb: float = 4.0) -> None:
        self.max_utilization = max_utilization
        self.headroom_mb = headroom_mb

    def _fits(self, candidate: StationView, required_mb: float) -> bool:
        return station_fits(candidate, required_mb, self.max_utilization, self.headroom_mb)

    def choose(self, client_station: str, candidates: List[StationView]) -> str:
        raise DeploymentError(
            "bin-packing placement needs the chain's size: dispatch through "
            "choose_sized (the engine always does)"
        )

    def choose_sized(
        self, client_station: str, candidates: List[StationView], required_mb: float
    ) -> str:
        _require_candidates(candidates)
        local = next((c for c in candidates if c.name == client_station), None)
        if local is not None and self._fits(local, required_mb):
            return client_station
        fitting = [c for c in candidates if self._fits(c, required_mb)]
        if fitting:
            best = max(fitting, key=lambda c: (c.load_score(), -c.client_latency_s, c.name))
            return best.name
        best = min(candidates, key=lambda c: (c.load_score(), c.client_latency_s, c.name))
        return best.name


@dataclass(frozen=True)
class ChainSegment:
    """One contiguous run of a chain's NFs embedded on one station.

    ``start``/``end`` index the chain's specs (``end`` exclusive), so a whole
    chain is the single segment ``(station, 0, len(chain))`` and a split
    deployment is two or more segments covering the chain without gaps.
    """

    station_name: str
    start: int
    end: int

    @property
    def nf_count(self) -> int:
        return self.end - self.start


@dataclass
class EmbeddingResult:
    """Outcome of one embedding attempt: the segment map and its SLO verdict."""

    segments: List[ChainSegment]
    feasible: bool
    slo_violation: bool = False
    reason: str = ""
    latency_s: float = 0.0
    bandwidth_mbps: float = 0.0  # 0.0 = unconstrained / unknown


class EmbeddingPlacement:
    """Constraint-aware SFC embedding: a chain may split across stations.

    While the client's station is unloaded the whole chain lands there --
    exactly :class:`LeastLoadedPlacement`'s local-preference rule, so an
    unsaturated deployment stays digest-identical to the whole-chain
    strategies.  Under pressure the chain is embedded greedily: the local
    station keeps as long a *prefix* of the chain as still fits (the NFs
    nearest the client), and the remainder spills onto neighbouring stations
    ranked by load, then by the client's radio quality towards them (stations
    the client hears poorly are deprioritized), then latency, then name.

    The engine prices each embedding against the chain's
    :class:`~repro.core.chain.ChainSLO` via :meth:`embed`: every remote
    segment adds a there-and-back inter-station hop to the latency estimate,
    and the end-to-end bandwidth is the weakest of the client's radio rate
    and the residual uplink of every station the chain crosses.  An
    SLO-infeasible chain is *rejected* -- not queued, since waiting frees
    memory but never shortens a detour.  Per-NF ``cpu_units`` demands are
    carried on the specs but not priced yet (stations publish no CPU
    capacity); memory gates the fit and bandwidth gates the SLO.
    """

    name = "embedding"

    def __init__(
        self,
        latency_budget_s: float = 0.05,
        prefer_local_below: float = 0.6,
        max_utilization: float = 0.85,
        headroom_mb: float = 4.0,
    ) -> None:
        self.latency_budget_s = latency_budget_s
        self.prefer_local_below = prefer_local_below
        self.max_utilization = max_utilization
        self.headroom_mb = headroom_mb

    def _fits(self, candidate: StationView, required_mb: float) -> bool:
        return station_fits(candidate, required_mb, self.max_utilization, self.headroom_mb)

    # Whole-chain compatibility path (mirrors LeastLoadedPlacement, so code
    # that cannot thread segments still gets sane single-station choices).
    def choose_sized(
        self, client_station: str, candidates: List[StationView], required_mb: float
    ) -> str:
        _require_candidates(candidates)
        local = next((c for c in candidates if c.name == client_station), None)
        if local is not None and local.load_score() < self.prefer_local_below:
            return client_station
        eligible = [c for c in candidates if c.client_latency_s <= self.latency_budget_s]
        pool = eligible or candidates
        return min(pool, key=lambda c: (c.load_score(), c.client_latency_s, c.name)).name

    def choose(self, client_station: str, candidates: List[StationView]) -> str:
        return self.choose_sized(client_station, candidates, 0.0)

    def embed(
        self,
        client_station: str,
        candidates: List[StationView],
        nf_sizes_mb: List[float],
        max_latency_s: Optional[float] = None,
        required_bandwidth_mbps: float = 0.0,
        radio_rates_bps: Optional[Dict[str, float]] = None,
        uplink_bandwidth_mbps: float = 0.0,
    ) -> EmbeddingResult:
        """Map the chain's NFs onto stations and price the result's SLO."""
        _require_candidates(candidates)
        if not nf_sizes_mb:
            raise DeploymentError("cannot embed an empty chain")
        rates = radio_rates_bps or {}
        by_name = {candidate.name: candidate for candidate in candidates}
        local = by_name.get(client_station)
        n = len(nf_sizes_mb)
        total_mb = sum(nf_sizes_mb)

        def priced(segments: List[ChainSegment]) -> EmbeddingResult:
            latency = 0.0
            bandwidth = float("inf")
            access_rate = rates.get(client_station)
            if access_rate is not None:
                bandwidth = min(bandwidth, access_rate / 1e6)
            crossed = [client_station] + [
                segment.station_name
                for segment in segments
                if segment.station_name != client_station
            ]
            for name in crossed:
                view = by_name.get(name)
                if view is None:
                    continue
                if name != client_station:
                    # The detour out to a remote segment and back: two
                    # traversals of the client-station<->there path.
                    latency += 2.0 * view.client_latency_s
                if uplink_bandwidth_mbps > 0.0:
                    bandwidth = min(
                        bandwidth,
                        uplink_bandwidth_mbps * max(0.0, 1.0 - view.uplink_utilization),
                    )
            reported_bw = 0.0 if bandwidth == float("inf") else bandwidth
            if max_latency_s is not None and latency > max_latency_s:
                return EmbeddingResult(
                    segments,
                    feasible=False,
                    slo_violation=True,
                    reason=(
                        f"SLO infeasible: detour latency {latency * 1e3:.1f} ms "
                        f"exceeds {max_latency_s * 1e3:.1f} ms"
                    ),
                    latency_s=latency,
                    bandwidth_mbps=reported_bw,
                )
            if required_bandwidth_mbps > 0.0 and bandwidth < required_bandwidth_mbps:
                return EmbeddingResult(
                    segments,
                    feasible=False,
                    slo_violation=True,
                    reason=(
                        f"SLO infeasible: path bandwidth {reported_bw:.1f} Mbit/s "
                        f"below {required_bandwidth_mbps:.1f} Mbit/s"
                    ),
                    latency_s=latency,
                    bandwidth_mbps=reported_bw,
                )
            return EmbeddingResult(
                segments, feasible=True, latency_s=latency, bandwidth_mbps=reported_bw
            )

        # Unloaded client station: whole chain local, whatever its size --
        # the same rule (and therefore the same digests) as least-loaded.
        if local is not None and local.load_score() < self.prefer_local_below:
            return priced([ChainSegment(client_station, 0, n)])

        # Saturated: greedy prefix packing.  The local station keeps as many
        # head NFs as fit its scraps, the remainder spills onto neighbours
        # ranked by load / radio quality / latency / name.
        eligible = [c for c in candidates if c.client_latency_s <= self.latency_budget_s]
        pool = eligible or list(candidates)

        def rank(candidate: StationView):
            return (
                candidate.load_score(),
                -rates.get(candidate.name, 0.0),
                candidate.client_latency_s,
                candidate.name,
            )

        order: List[StationView] = [local] if local is not None else []
        order.extend(sorted((c for c in pool if c.name != client_station), key=rank))
        segments: List[ChainSegment] = []
        index = 0
        for view in order:
            if index >= n:
                break
            count = 0
            while index + count < n and self._fits(
                view, sum(nf_sizes_mb[index : index + count + 1])
            ):
                count += 1
            if count:
                segments.append(ChainSegment(view.name, index, index + count))
                index += count
        if index < n:
            # Capacity-infeasible right now (may clear via the admission
            # queue).  Surface the least-loaded station as the nominal
            # target so failure reporting matches the whole-chain path.
            fallback = min(pool, key=lambda c: (c.load_score(), c.client_latency_s, c.name))
            return EmbeddingResult(
                [ChainSegment(fallback.name, 0, n)],
                feasible=False,
                slo_violation=False,
                reason=(
                    f"no embedding fits: {total_mb:.0f} MB of NFs exceed the "
                    f"capacity of all {len(order)} candidate stations"
                ),
            )
        return priced(segments)


#: Strategy names accepted by :func:`make_strategy` (and by the
#: ``TestbedConfig.placement_strategy`` / ``TopologySpec.placement_strategy``
#: knobs and the ``run_scenario.py --placement`` CLI flag).
STRATEGY_FACTORIES: Dict[str, Callable[[], PlacementStrategy]] = {
    "closest-agent": ClosestAgentPlacement,
    "least-loaded": LeastLoadedPlacement,
    "latency-weighted": LatencyWeightedPlacement,
    "bin-packing": BinPackingPlacement,
    "load-aware": LoadAwarePlacement,
    "latency-aware": LatencyAwarePlacement,
    "embedding": EmbeddingPlacement,
}


def make_strategy(name: str) -> PlacementStrategy:
    """Build a placement strategy from its registry name."""
    try:
        factory = STRATEGY_FACTORIES[name]
    except KeyError as exc:
        raise DeploymentError(
            f"unknown placement strategy {name!r}; valid: {sorted(STRATEGY_FACTORIES)}"
        ) from exc
    return factory()


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


@dataclass
class AdmissionPolicy:
    """When (and how) the engine refuses deployments to saturated stations.

    Disabled by default: every placement is admitted and the engine behaves
    exactly like the historical strategy-only code path (no extra simulator
    events, identical digests).  When enabled, a placement whose chosen
    station cannot fit the chain is *queued* (``queue=True``) and retried
    every ``retry_interval_s`` until capacity frees or ``queue_timeout_s``
    expires (the assignment then fails with an admission-timeout reason), or
    rejected outright (``queue=False`` -- the assignment fails immediately).
    """

    enabled: bool = False
    max_utilization: float = 0.85
    headroom_mb: float = 4.0
    queue: bool = True
    retry_interval_s: float = 1.0
    queue_timeout_s: float = 30.0
    queue_limit: int = 1024


@dataclass
class PlacementDecision:
    """One placement verdict: where, and whether the deployment may proceed.

    ``segments`` is non-empty only for a *split* embedding: two or more
    :class:`ChainSegment` entries covering the chain, the first of which (the
    head, holding the client-nearest NFs) lives on ``station_name``.  An
    empty list means the historical whole-chain deployment on
    ``station_name``.  ``slo_rejected`` marks a rejection that no amount of
    queueing can cure (the SLO, not capacity, is infeasible).
    """

    station_name: str
    admitted: bool
    queued: bool = False
    reason: str = ""
    required_mb: float = 0.0
    segments: List[ChainSegment] = field(default_factory=list)
    slo_rejected: bool = False


class _QueuedPlacement:
    __slots__ = ("assignment", "client_station", "chain", "enqueued_at")

    def __init__(self, assignment, client_station: str, chain, enqueued_at: float) -> None:
        self.assignment = assignment
        self.client_station = client_station
        self.chain = chain
        self.enqueued_at = enqueued_at


class PlacementEngine:
    """The Manager's placement subsystem.

    One engine serves one Manager (each shard of a ``ShardedManager`` gets a
    trivial engine; the frontend's engine sees the *global* station view).
    Responsibilities:

    * run the configured :class:`PlacementStrategy` over candidate
      :class:`StationView`\\ s, adjusted for **pending commitments** --
      placements decided in the last ``pending_ttl_s`` seconds whose
      containers have not yet shown up in heartbeats, so a same-tick attach
      burst cannot pile every chain onto one stale-looking station.  Keep
      the TTL near the heartbeat interval: it only has to cover the
      telemetry blind window, and a longer TTL double-counts chains that
      heartbeats already report;
    * apply the :class:`AdmissionPolicy`: queue or reject deployments whose
      chosen station is saturated, retry queued ones periodically, and time
      them out;
    * keep the placement counters surfaced by ``stats()`` (local vs remote
      placements, rejections, queue depth high-water).

    The engine is wired to its Manager with :meth:`bind`; the callbacks keep
    this module free of Manager imports.
    """

    def __init__(
        self,
        simulator: Simulator,
        strategy: Optional[PlacementStrategy] = None,
        repository=None,
        admission: Optional[AdmissionPolicy] = None,
        pending_ttl_s: float = 3.0,
    ) -> None:
        self.simulator = simulator
        self.strategy: PlacementStrategy = strategy or ClosestAgentPlacement()
        self.repository = repository
        self.admission = admission or AdmissionPolicy()
        self.pending_ttl_s = pending_ttl_s
        # (expires_at, station, mb) commitments not yet visible in telemetry.
        self._pending: List[tuple] = []
        self._queue: List[_QueuedPlacement] = []
        self._task: Optional[PeriodicTask] = None
        self._views_provider: Optional[Callable[[Optional[str]], List[StationView]]] = None
        self._on_admit: Optional[Callable[[object, PlacementDecision], None]] = None
        self._on_timeout: Optional[Callable[[object, str], None]] = None
        self._locate: Optional[Callable[[str], Optional[str]]] = None
        # Radio signal for embedding: client_ip -> {station: PHY rate bps}.
        self._radio_rates: Optional[Callable[[str], Dict[str, float]]] = None
        self.uplink_bandwidth_mbps = 0.0
        #: Per-container bookkeeping the runtime adds on top of each NF's
        #: memory request (``ContainerRuntime.per_container_overhead_mb``).
        #: 0 until the owning testbed binds it; pricing it keeps the
        #: engine's fit checks honest against what admission will charge.
        self.nf_overhead_mb = 0.0
        self.placements = 0
        self.local_placements = 0
        self.remote_placements = 0
        self.split_placements = 0
        self.segments_placed = 0
        self.slo_rejections = 0
        self.rejections = 0
        self.retry_probes = 0
        self.queued_total = 0
        self.queue_timeouts = 0
        self.dispatched_from_queue = 0
        self.queue_high_water = 0

    # --------------------------------------------------------------- wiring

    def bind(
        self,
        views: Callable[[Optional[str]], List[StationView]],
        on_admit: Callable[[object, str], None],
        on_timeout: Callable[[object, str], None],
        locate: Optional[Callable[[str], Optional[str]]] = None,
    ) -> None:
        """Attach the owning Manager's callbacks (one-time wiring).

        ``views(client_station)`` must return fresh candidate views;
        ``on_admit(assignment, decision)`` dispatches a queued assignment
        that finally got capacity (the decision carries the station and any
        split segments); ``on_timeout(assignment, reason)`` fails one whose
        queue time expired.  ``locate(client_ip)`` returns the client's
        *current* station so queue retries follow a client that roamed while
        its placement waited.
        """
        self._views_provider = views
        self._on_admit = on_admit
        self._on_timeout = on_timeout
        self._locate = locate

    def bind_radio(
        self,
        rates_provider: Optional[Callable[[str], Dict[str, float]]],
        uplink_bandwidth_mbps: float = 0.0,
    ) -> None:
        """Attach the radio signal embedding prices (optional wiring).

        ``rates_provider(client_ip)`` returns the per-station PHY-rate map
        from the handover scan path (``HandoverManager.station_link_rates``);
        ``uplink_bandwidth_mbps`` is the stations' backhaul capacity so
        residual uplink bandwidth can enter the SLO check.  Without this
        wiring embedding still works, it just prices no radio/backhaul term.
        """
        self._radio_rates = rates_provider
        self.uplink_bandwidth_mbps = uplink_bandwidth_mbps

    # ---------------------------------------------------------- chain sizing

    def chain_memory_mb(self, chain) -> float:
        """Estimated memory footprint of a chain (requirements, else catalogue)."""
        if chain is None:
            return 0.0
        return sum(self.nf_sizes_mb(chain))

    def nf_sizes_mb(self, chain) -> List[float]:
        """Per-NF memory estimates: declared requirements win over the
        catalogue's image default; each carries the runtime's per-container
        overhead so estimates match what admission will actually charge."""
        sizes: List[float] = []
        for spec in chain.specs:
            requirements = getattr(spec, "requirements", None)
            if requirements is not None and requirements.memory_mb is not None:
                sizes.append(requirements.memory_mb + self.nf_overhead_mb)
            else:
                sizes.append(self.nf_memory_mb(spec.nf_type) + self.nf_overhead_mb)
        return sizes

    def chain_bandwidth_mbps(self, chain) -> float:
        """The end-to-end rate the chain's path must sustain: the SLO floor
        or the largest per-NF bandwidth demand, whichever is higher."""
        if chain is None:
            return 0.0
        demand = 0.0
        slo = getattr(chain, "slo", None)
        if slo is not None and slo.min_bandwidth_mbps is not None:
            demand = slo.min_bandwidth_mbps
        for spec in chain.specs:
            requirements = getattr(spec, "requirements", None)
            if requirements is not None:
                demand = max(demand, requirements.bandwidth_mbps)
        return demand

    def nf_memory_mb(self, nf_type: str) -> float:
        """Catalogue default memory for one NF type (0 when unknown)."""
        if self.repository is None or nf_type not in self.repository:
            return 0.0
        return self.repository.lookup(nf_type).image.default_memory_mb

    # ------------------------------------------------------------- placement

    def _prune_pending(self) -> None:
        now = self.simulator.now
        self._pending = [entry for entry in self._pending if entry[0] > now]

    def _adjusted(self, candidates: List[StationView]) -> List[StationView]:
        """Candidate views with un-expired placement commitments applied."""
        if not self._pending:
            return candidates
        pending_mb: Dict[str, float] = {}
        for _, station, mb in self._pending:
            pending_mb[station] = pending_mb.get(station, 0.0) + mb
        adjusted: List[StationView] = []
        for view in candidates:
            extra = pending_mb.get(view.name, 0.0)
            if extra <= 0.0:
                adjusted.append(view)
                continue
            allocatable = view.allocatable_memory_mb or (
                view.free_memory_mb / max(1e-9, 1.0 - view.memory_utilization)
                if view.memory_utilization < 1.0
                else view.free_memory_mb
            )
            free = max(0.0, view.free_memory_mb - extra)
            utilization = (
                min(1.0, (allocatable - free) / allocatable) if allocatable > 0 else view.memory_utilization
            )
            adjusted.append(replace(view, free_memory_mb=free, memory_utilization=utilization))
        return adjusted

    def _admits(self, view: StationView, required_mb: float) -> bool:
        policy = self.admission
        return station_fits(view, required_mb, policy.max_utilization, policy.headroom_mb)

    def place(
        self,
        client_station: str,
        candidates: List[StationView],
        chain=None,
        client_ip: Optional[str] = None,
        _retry: bool = False,
    ) -> PlacementDecision:
        """Choose a station (or an embedding) for ``chain`` and apply admission.

        Pure decision logic: no simulator events are scheduled and nothing
        is mutated beyond the engine's own counters/ledger, so with the
        default strategy and admission off this is behaviour-identical to
        the pre-engine ``strategy.choose`` call.  ``client_ip`` lets an
        embedding strategy price the client's radio signal; it is optional
        and never changes non-embedding strategies.
        """
        self._prune_pending()
        required_mb = self.chain_memory_mb(chain)
        views = self._adjusted(candidates)
        embed = getattr(self.strategy, "embed", None)
        if embed is not None and chain is not None:
            result = embed(
                client_station,
                views,
                self.nf_sizes_mb(chain),
                max_latency_s=(
                    chain.slo.max_latency_s if getattr(chain, "slo", None) is not None else None
                ),
                required_bandwidth_mbps=self.chain_bandwidth_mbps(chain),
                radio_rates_bps=(
                    self._radio_rates(client_ip)
                    if self._radio_rates is not None and client_ip is not None
                    else None
                ),
                uplink_bandwidth_mbps=self.uplink_bandwidth_mbps,
            )
            if not result.feasible:
                if _retry:
                    self.retry_probes += 1
                else:
                    self.rejections += 1
                if result.slo_violation:
                    # Terminal: queueing frees capacity, never bandwidth or
                    # a detour -- the assignment must fail with the reason.
                    self.slo_rejections += 1
                    return PlacementDecision(
                        station_name=result.segments[0].station_name,
                        admitted=False,
                        queued=False,
                        reason=result.reason,
                        required_mb=required_mb,
                        slo_rejected=True,
                    )
                queued = (
                    self.admission.enabled
                    and self.admission.queue
                    and len(self._queue) < self.admission.queue_limit
                )
                return PlacementDecision(
                    station_name=result.segments[0].station_name,
                    admitted=False,
                    queued=queued,
                    reason=result.reason,
                    required_mb=required_mb,
                )
            if len(result.segments) > 1:
                # A split embedding did its own per-segment fit checks; book
                # each segment's memory where it will actually land.
                sizes = self.nf_sizes_mb(chain)
                for segment in result.segments:
                    self._commit(
                        segment.station_name, sum(sizes[segment.start : segment.end])
                    )
                self.placements += 1
                self.remote_placements += 1
                self.split_placements += 1
                self.segments_placed += len(result.segments)
                return PlacementDecision(
                    station_name=result.segments[0].station_name,
                    admitted=True,
                    required_mb=required_mb,
                    segments=list(result.segments),
                )
            # Single segment: fall through to the common whole-chain tail so
            # admission control and the counters behave identically to the
            # non-embedding strategies.
            chosen = result.segments[0].station_name
        else:
            choose_sized = getattr(self.strategy, "choose_sized", None)
            if choose_sized is not None:
                chosen = choose_sized(client_station, views, required_mb)
            else:
                chosen = self.strategy.choose(client_station, views)
        if self.admission.enabled:
            chosen_view = next((view for view in views if view.name == chosen), None)
            if chosen_view is None or not self._admits(chosen_view, required_mb):
                # Queue retries are probes, not fresh refusals: count them
                # separately so `rejections` means "deployments refused".
                if _retry:
                    self.retry_probes += 1
                else:
                    self.rejections += 1
                queued = self.admission.queue and len(self._queue) < self.admission.queue_limit
                return PlacementDecision(
                    station_name=chosen,
                    admitted=False,
                    queued=queued,
                    reason=(
                        f"station {chosen} saturated "
                        f"(free={chosen_view.free_memory_mb:.1f} MB, "
                        f"required={required_mb:.1f} MB)"
                        if chosen_view is not None
                        else f"station {chosen} has no view"
                    ),
                    required_mb=required_mb,
                )
        self._commit(chosen, required_mb)
        self.placements += 1
        if chosen == client_station:
            self.local_placements += 1
        else:
            self.remote_placements += 1
        return PlacementDecision(station_name=chosen, admitted=True, required_mb=required_mb)

    def _commit(self, station: str, required_mb: float) -> None:
        if required_mb > 0.0:
            self._pending.append((self.simulator.now + self.pending_ttl_s, station, required_mb))

    def commit(self, station: str, required_mb: float) -> None:
        """Book memory against a station outside :meth:`place`.

        Used by the autoscaler for replica and rebalance targets, so its
        deployments are visible to concurrent placement decisions during
        the telemetry blind window (and vice versa).
        """
        self._commit(station, required_mb)

    def adjusted_views(self, candidates: List[StationView]) -> List[StationView]:
        """Candidate views with all un-expired commitments applied."""
        self._prune_pending()
        return self._adjusted(candidates)

    # ----------------------------------------------------------------- queue

    def enqueue(self, assignment, client_station: str, chain) -> None:
        """Park a not-admitted assignment until capacity frees (or timeout)."""
        self._queue.append(
            _QueuedPlacement(assignment, client_station, chain, self.simulator.now)
        )
        self.queued_total += 1
        self.queue_high_water = max(self.queue_high_water, len(self._queue))
        if self._task is None:
            self._task = self.simulator.every(self.admission.retry_interval_s, self._drain_queue)

    def cancel(self, assignment_id: str) -> bool:
        """Drop a queued placement (the assignment was detached)."""
        before = len(self._queue)
        self._queue = [entry for entry in self._queue if entry.assignment.assignment_id != assignment_id]
        return len(self._queue) != before

    def queued_assignment_ids(self) -> List[str]:
        return [entry.assignment.assignment_id for entry in self._queue]

    def _drain_queue(self) -> None:
        """One retry pass: dispatch entries that now fit, expire stale ones."""
        if self._views_provider is None:
            return
        now = self.simulator.now
        remaining: List[_QueuedPlacement] = []
        for entry in self._queue:
            if now - entry.enqueued_at >= self.admission.queue_timeout_s:
                self.queue_timeouts += 1
                if self._on_timeout is not None:
                    self._on_timeout(
                        entry.assignment,
                        f"admission queue timeout after {self.admission.queue_timeout_s:.0f}s",
                    )
                continue
            # Follow a client that roamed while its placement waited: retry
            # relative to where it is connected *now*, not where it was.
            client_station = entry.client_station
            if self._locate is not None:
                client_station = (
                    self._locate(entry.assignment.client_ip) or entry.client_station
                )
                entry.client_station = client_station
            decision = self.place(
                client_station,
                self._views_provider(client_station),
                entry.chain,
                client_ip=getattr(entry.assignment, "client_ip", None),
                _retry=True,
            )
            if decision.admitted:
                self.dispatched_from_queue += 1
                if self._on_admit is not None:
                    self._on_admit(entry.assignment, decision)
            elif decision.slo_rejected:
                # The client roamed somewhere its SLO can never be met from;
                # waiting will not help, so fail the entry with the reason.
                if self._on_timeout is not None:
                    self._on_timeout(entry.assignment, decision.reason)
            else:
                remaining.append(entry)
        self._queue = remaining
        if not self._queue and self._task is not None:
            self._task.stop()
            self._task = None

    def stop(self) -> None:
        """End-of-run teardown: stop retrying and fail whatever is queued.

        Entries still waiting would otherwise be stranded as PENDING
        forever; failing them through the timeout callback gives post-run
        readers an explicit state and reason.
        """
        if self._task is not None:
            self._task.stop()
            self._task = None
        stranded, self._queue = self._queue, []
        for entry in stranded:
            self.queue_timeouts += 1
            if self._on_timeout is not None:
                self._on_timeout(entry.assignment, "run ended while queued for admission")

    # ----------------------------------------------------------------- stats

    def stats(self) -> Dict[str, float]:
        """Placement counters (digest-safe: no strategy name, no ids)."""
        return {
            "placements": float(self.placements),
            "local_placements": float(self.local_placements),
            "remote_placements": float(self.remote_placements),
            "split_placements": float(self.split_placements),
            "segments_placed": float(self.segments_placed),
            "slo_rejections": float(self.slo_rejections),
            "rejections": float(self.rejections),
            "retry_probes": float(self.retry_probes),
            "queued_total": float(self.queued_total),
            "queue_depth": float(len(self._queue)),
            "queue_high_water": float(self.queue_high_water),
            "queue_timeouts": float(self.queue_timeouts),
            "dispatched_from_queue": float(self.dispatched_from_queue),
        }


# ---------------------------------------------------------------------------
# Autoscaling
# ---------------------------------------------------------------------------


@dataclass
class ScaleEvent:
    """One autoscaler action (digest-safe: stations and sizes, no ids)."""

    time: float
    kind: str  # "scale-up" | "scale-down" | "rebalance"
    from_station: str
    to_station: str
    nf_count: int


@dataclass
class _Replica:
    """One horizontally scaled replica chain the autoscaler tracks."""

    replica_id: str
    station_name: str
    home_station: str
    nf_count: int


class NFAutoscaler:
    """Utilization-driven horizontal scaling of NF chains.

    Every ``interval_s`` the autoscaler scores each station's
    :meth:`StationView.load_score`.  A station hot for ``hot_evals``
    consecutive evaluations gets one action per evaluation:

    * **scale-up** -- the largest active chain on the hot station gains a
      replica on the least-loaded station that can fit it.  Replica chains
      are the original chain fronted by a ``load-balancer`` NF, deployed
      under a derived chain id so they never collide with the assignment's
      own deployment.
    * **rebalance** -- when no chain on the hot station can scale out any
      further (replica budgets spent, or the eligible targets already host
      their replicas), the smallest assignment is migrated to the target
      station through the existing migration engine (cold / stateful /
      precopy, whatever the deployment is configured with), which also
      keeps the move handoff-safe under a sharded control plane.  Replicas
      model warm standby capacity; the rebalance migrations are what
      actually shed load off the hot station in the emulation.

    A station cold for ``hot_evals`` evaluations has one replica drained per
    evaluation; replicas whose parent assignment disappeared are pruned
    eagerly and :meth:`shutdown` removes the rest, so a drained scenario can
    never leak replica containers (asserted by the round-trip tests).
    """

    def __init__(
        self,
        simulator: Simulator,
        manager,
        roaming=None,
        interval_s: float = 5.0,
        scale_up_threshold: float = 0.8,
        scale_down_threshold: float = 0.4,
        max_replicas_per_chain: int = 2,
        rebalance: bool = True,
        hot_evals: int = 2,
        rebalance_cooldown_s: float = 15.0,
    ) -> None:
        self.simulator = simulator
        self.manager = manager
        self.roaming = roaming
        self.interval_s = interval_s
        self.scale_up_threshold = scale_up_threshold
        self.scale_down_threshold = scale_down_threshold
        self.max_replicas_per_chain = max_replicas_per_chain
        self.rebalance_enabled = rebalance
        self.hot_evals = hot_evals
        self.rebalance_cooldown_s = rebalance_cooldown_s
        # assignment_id -> last rebalance time (damps migration ping-pong:
        # a moved chain makes its target warmer, which must not immediately
        # bounce the same chain somewhere else).
        self._last_rebalance: Dict[str, float] = {}
        self._task: Optional[PeriodicTask] = None
        self._ids = itertools.count(1)
        # assignment_id -> station -> replica
        self._replicas: Dict[str, Dict[str, _Replica]] = {}
        self._hot_streak: Dict[str, int] = {}
        self._cold_streak: Dict[str, int] = {}
        self.events: List[ScaleEvent] = []
        self.evaluations = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self.rebalances = 0
        self.replica_boot_failures = 0

    # --------------------------------------------------------------- control

    def start(self) -> "NFAutoscaler":
        """Begin periodic evaluation (idempotent)."""
        if self._task is None:
            self._task = self.simulator.every(self.interval_s, self.evaluate)
        return self

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def shutdown(self) -> None:
        """End-of-run cleanup: stop evaluating and tear down every replica."""
        self.stop()
        for assignment_id in list(self._replicas):
            for replica in list(self._replicas.get(assignment_id, {}).values()):
                self._remove_replica(assignment_id, replica, count_event=False)
        self._replicas.clear()

    @property
    def active_replicas(self) -> int:
        return sum(len(replicas) for replicas in self._replicas.values())

    # ------------------------------------------------------------- evaluation

    def evaluate(self) -> None:
        """One autoscaling pass over the (shard-merged) station views."""
        self.evaluations += 1
        self._prune_dead_parents()
        views = sorted(self.manager.station_views(), key=lambda view: view.name)
        for view in views:
            load = view.load_score()
            if load >= self.scale_up_threshold:
                self._hot_streak[view.name] = self._hot_streak.get(view.name, 0) + 1
                self._cold_streak[view.name] = 0
            elif load <= self.scale_down_threshold:
                self._cold_streak[view.name] = self._cold_streak.get(view.name, 0) + 1
                self._hot_streak[view.name] = 0
            else:
                self._hot_streak[view.name] = 0
                self._cold_streak[view.name] = 0
        for view in views:
            if self._hot_streak.get(view.name, 0) >= self.hot_evals:
                self._handle_hot_station(view, views)
        for view in views:
            if self._cold_streak.get(view.name, 0) >= self.hot_evals:
                self._handle_cold_station(view.name)

    def _assignments_on(self, station_name: str) -> List[object]:
        # state compared by value to stay Manager-duck-typed (no core.manager
        # import from this module).
        assignments = [
            assignment
            for assignment in self.manager.assignments.values()
            if assignment.station_name == station_name and assignment.state.value == "active"
        ]
        assignments.sort(key=lambda a: (-len(a.chain), a.assignment_id))
        return assignments

    def _pick_target(self, views: List[StationView], required_mb: float, exclude: Iterable[str]):
        # Score commitment-adjusted views when the Manager has an engine:
        # deployments booked in the telemetry blind window (including this
        # autoscaler's own, from earlier in the same pass) must not make a
        # station look emptier than it is.
        engine = getattr(self.manager, "placement_engine", None)
        if engine is not None:
            views = engine.adjusted_views(views)
        excluded = set(exclude)
        candidates = [
            view
            for view in views
            if view.name not in excluded
            and view.load_score() < self.scale_up_threshold
            and view.free_memory_mb >= required_mb + 4.0
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda view: (view.load_score(), view.name))

    def _handle_hot_station(self, view: StationView, views: List[StationView]) -> None:
        assignments = self._assignments_on(view.name)
        if not assignments:
            return
        engine = getattr(self.manager, "placement_engine", None)
        for assignment in assignments:
            replicas = self._replicas.get(assignment.assignment_id, {})
            if len(replicas) >= self.max_replicas_per_chain:
                continue
            # A replica costs the chain plus its load-balancer front; size
            # both from the catalogue so the fit check and the commitment
            # booked by _scale_up can never diverge.
            required = (
                engine.chain_memory_mb(assignment.chain) + engine.nf_memory_mb("load-balancer")
                if engine
                else 0.0
            )
            target = self._pick_target(views, required, exclude=(view.name,))
            if target is None:
                break  # no station can fit any replica this round
            if target.name in replicas:
                continue  # this chain already replicated there; try the next
            self._scale_up(assignment, view.name, target.name)
            return
        # No chain could scale out (budgets spent or targets already host
        # their replicas): rebalance the smallest one that has not been
        # moved within the cooldown window.
        if not self.rebalance_enabled or self.roaming is None:
            return
        now = self.simulator.now
        movable = [
            assignment
            for assignment in assignments
            if now - self._last_rebalance.get(assignment.assignment_id, -1e18)
            >= self.rebalance_cooldown_s
        ]
        if not movable:
            return
        smallest = min(movable, key=lambda a: (len(a.chain), a.assignment_id))
        required = engine.chain_memory_mb(smallest.chain) if engine else 0.0
        # Never migrate a chain onto a station hosting its own replica: the
        # replica is that chain's warm standby, and coexistence would stack
        # two steering-rule sets for the identical selector.
        exclude = {view.name} | set(self._replicas.get(smallest.assignment_id, {}))
        target = self._pick_target(views, required, exclude=exclude)
        if target is not None:
            self._rebalance(smallest, view.name, target.name)

    def _handle_cold_station(self, station_name: str) -> None:
        # Drain one replica per evaluation whose parent lives on the cooled
        # station (gentle scale-down; deterministic pick by assignment id).
        for assignment_id in sorted(self._replicas):
            assignment = self.manager.assignments.get(assignment_id)
            if assignment is None or assignment.station_name != station_name:
                continue
            replicas = self._replicas[assignment_id]
            for target_station in sorted(replicas):
                self._remove_replica(assignment_id, replicas[target_station])
                return

    # ----------------------------------------------------------- scale up/down

    def _scale_up(self, assignment, home_station: str, target_station: str) -> None:
        agent = self.manager.agents.get(target_station)
        channel = self.manager.channels.get(target_station)
        if agent is None or channel is None:
            return
        replica_id = f"{assignment.assignment_id}-scale-{next(self._ids)}"
        replica_chain = ServiceChain(
            [NFSpec(nf_type="load-balancer")] + list(assignment.chain.specs),
            name=f"{assignment.chain.name}/scale",
        )
        replica = _Replica(
            replica_id=replica_id,
            station_name=target_station,
            home_station=home_station,
            nf_count=len(replica_chain),
        )
        self._replicas.setdefault(assignment.assignment_id, {})[target_station] = replica

        def on_complete(deployment, success: bool, detail: str) -> None:
            if success:
                return
            # A replica that failed to boot is no replica: drop the ledger
            # entry (the agent already rolled its containers back).
            self.replica_boot_failures += 1
            replicas = self._replicas.get(assignment.assignment_id)
            if replicas and replicas.get(target_station) is replica:
                replicas.pop(target_station, None)
                if not replicas:
                    self._replicas.pop(assignment.assignment_id, None)

        channel.call(
            agent.deploy_chain,
            replica_id,
            assignment.client_ip,
            replica_chain,
            assignment.selector,
            None,
            on_complete,
        )
        engine = getattr(self.manager, "placement_engine", None)
        if engine is not None:
            engine.commit(target_station, engine.chain_memory_mb(replica_chain))
        self.scale_ups += 1
        self.events.append(
            ScaleEvent(
                time=self.simulator.now,
                kind="scale-up",
                from_station=home_station,
                to_station=target_station,
                nf_count=len(replica_chain),
            )
        )

    def _remove_replica(self, assignment_id: str, replica: _Replica, count_event: bool = True) -> None:
        replicas = self._replicas.get(assignment_id)
        if replicas is not None:
            replicas.pop(replica.station_name, None)
            if not replicas:
                self._replicas.pop(assignment_id, None)
        agent = self.manager.agents.get(replica.station_name)
        channel = self.manager.channels.get(replica.station_name)
        if agent is not None and channel is not None:
            channel.call(agent.remove_chain, replica.replica_id)
        if count_event:
            self.scale_downs += 1
            self.events.append(
                ScaleEvent(
                    time=self.simulator.now,
                    kind="scale-down",
                    from_station=replica.station_name,
                    to_station=replica.home_station,
                    nf_count=replica.nf_count,
                )
            )

    def _rebalance(self, assignment, from_station: str, to_station: str) -> None:
        """Migrate a whole assignment off a hotspot via the migration engine."""
        event = ClientEvent(
            station_name=to_station,
            client_ip=assignment.client_ip,
            client_name=self.manager.client_names.get(assignment.client_ip, assignment.client_ip),
            cell_name=f"{to_station}-cell1",
            event="connected",
            time=self.simulator.now,
        )
        self.roaming.handle_client_connected(assignment, event)
        engine = getattr(self.manager, "placement_engine", None)
        if engine is not None:
            engine.commit(to_station, engine.chain_memory_mb(assignment.chain))
        self._last_rebalance[assignment.assignment_id] = self.simulator.now
        self.rebalances += 1
        self.events.append(
            ScaleEvent(
                time=self.simulator.now,
                kind="rebalance",
                from_station=from_station,
                to_station=to_station,
                nf_count=len(assignment.chain),
            )
        )

    def _prune_dead_parents(self) -> None:
        """Drop replicas whose parent assignment is gone or no longer active."""
        for assignment_id in sorted(self._replicas):
            assignment = self.manager.assignments.get(assignment_id)
            if assignment is not None and assignment.state.value in ("active", "migrating"):
                continue
            for replica in list(self._replicas.get(assignment_id, {}).values()):
                self._remove_replica(assignment_id, replica)

    # ----------------------------------------------------------------- stats

    def summary(self) -> Dict[str, float]:
        """Autoscaler counters (digested by the scenario telemetry)."""
        return {
            "evaluations": float(self.evaluations),
            "scale_ups": float(self.scale_ups),
            "scale_downs": float(self.scale_downs),
            "rebalances": float(self.rebalances),
            "active_replicas": float(self.active_replicas),
            "replica_boot_failures": float(self.replica_boot_failures),
        }
