"""NF placement strategies.

Section 3: "the Manager notifies the closest Agent".  The reproduction keeps
placement pluggable so the E4 benchmark can ablate the choice:

* :class:`ClosestAgentPlacement` -- the paper's behaviour: place the NF on
  the station the client is attached to.
* :class:`LoadAwarePlacement` -- among stations within a latency bound of
  the client, pick the one with the most free memory (avoids hotspots).
* :class:`LatencyAwarePlacement` -- explicitly minimise client-to-NF latency
  using the topology graph (falls back to the attachment station).
* :class:`CorePlacement` -- always place at a designated core/central
  station; this is the "centralised NFV" baseline's strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol

from repro.core.errors import DeploymentError


@dataclass
class StationView:
    """What the Manager knows about a station when placing an NF."""

    name: str
    free_memory_mb: float
    memory_utilization: float
    running_nfs: int
    control_latency_s: float
    client_latency_s: float


class PlacementStrategy(Protocol):
    """Chooses a station for a client's chain."""

    name: str

    def choose(self, client_station: str, candidates: List[StationView]) -> str:
        """Return the chosen station name."""


class ClosestAgentPlacement:
    """Place on the station the client is currently attached to (the paper)."""

    name = "closest-agent"

    def choose(self, client_station: str, candidates: List[StationView]) -> str:
        for candidate in candidates:
            if candidate.name == client_station:
                return client_station
        raise DeploymentError(f"client station {client_station!r} is not a known candidate")


class LoadAwarePlacement:
    """Pick the least-loaded station within a latency budget of the client."""

    name = "load-aware"

    def __init__(self, latency_budget_s: float = 0.02, min_free_memory_mb: float = 8.0) -> None:
        self.latency_budget_s = latency_budget_s
        self.min_free_memory_mb = min_free_memory_mb

    def choose(self, client_station: str, candidates: List[StationView]) -> str:
        if not candidates:
            raise DeploymentError("no candidate stations")
        eligible = [
            candidate
            for candidate in candidates
            if candidate.client_latency_s <= self.latency_budget_s
            and candidate.free_memory_mb >= self.min_free_memory_mb
        ]
        pool = eligible or candidates
        best = max(pool, key=lambda candidate: (candidate.free_memory_mb, -candidate.client_latency_s))
        return best.name


class LatencyAwarePlacement:
    """Minimise latency to the client, breaking ties by free memory."""

    name = "latency-aware"

    def choose(self, client_station: str, candidates: List[StationView]) -> str:
        if not candidates:
            raise DeploymentError("no candidate stations")
        best = min(candidates, key=lambda candidate: (candidate.client_latency_s, -candidate.free_memory_mb))
        return best.name


class CorePlacement:
    """Always place on a designated central station (centralised-NFV baseline)."""

    name = "core"

    def __init__(self, core_station: str) -> None:
        self.core_station = core_station

    def choose(self, client_station: str, candidates: List[StationView]) -> str:
        for candidate in candidates:
            if candidate.name == self.core_station:
                return self.core_station
        raise DeploymentError(f"core station {self.core_station!r} is not a known candidate")
