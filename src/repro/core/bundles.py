"""Declarative service bundles and zero-gap rolling upgrades.

The charmed-OSM OAI bundle deploys a whole 5G core as per-NF operators from
one declarative document.  This module mirrors that shape on top of the
existing assignment machinery:

* :class:`BundleSpec` -- a versioned, named multi-NF service template:
  per-NF type / configuration / :class:`~repro.core.chain.NFRequirements`,
  per-NF scaling and placement hints, ``requires`` relations, and named
  *slices* (subsets of the NF graph with their own
  :class:`~repro.core.chain.ChainSLO` -- eMBB vs. IoT).  ``chain_for``
  compiles a bundle (or one slice of it) into a plain
  :class:`~repro.core.chain.ServiceChain`, so every existing placement,
  embedding, autoscaling, migration, sharding and federation path serves
  bundles unchanged.
* :class:`BundleCatalogue` -- the registry scenarios and the CLI list;
  :func:`default_catalogue` ships the OAI-shaped ``mobile-core`` bundle in
  two versions.
* :class:`BundleUpgradeOrchestrator` -- given ``bundle@v1 -> bundle@v2``,
  walks the live instances one at a time: boot the replacement chain
  *unsteered* next to the live one, copy state (iterative precopy rounds
  through the MigrationEngine's cost model, or one stateful freeze), then
  atomically re-key the replacement under the live assignment id in a
  single simulator event -- a packet arriving at any instant sees either
  the old steering rules or the new ones, never neither.  A station crash
  (FaultInjector) or a scheduler disable racing the window makes the
  cutover *retry or stall*, never half-cut-over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.chain import ChainSLO, NFRequirements, NFSpec, ServiceChain
from repro.core.manager import AssignmentState, upgrade_staging_id
from repro.netem.simulator import Simulator


class BundleError(ValueError):
    """Raised for malformed bundle specs or unknown catalogue lookups."""


# --------------------------------------------------------------------- specs


@dataclass(frozen=True)
class BundleNF:
    """One NF of a bundle: type, config, requirements, and operator hints."""

    name: str
    nf_type: str
    config: Tuple[Tuple[str, object], ...] = ()
    requirements: Optional[NFRequirements] = None
    #: Autoscaler hints: how many replicas this NF may fan out to.
    min_replicas: int = 1
    max_replicas: int = 1
    #: Placement hint: ``"edge"`` (stay at the client's station), ``"core"``
    #: (anywhere; embedding may push it off the head segment), or ``""``.
    placement_hint: str = ""
    #: Names of bundle NFs this one depends on (relations, OSM-style).
    requires: Tuple[str, ...] = ()

    def config_dict(self) -> Dict[str, object]:
        return dict(self.config)

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "name": self.name,
            "nf_type": self.nf_type,
            "config": self.config_dict(),
            "min_replicas": self.min_replicas,
            "max_replicas": self.max_replicas,
            "placement_hint": self.placement_hint,
            "requires": list(self.requires),
        }
        if self.requirements is not None:
            data["requirements"] = self.requirements.to_dict()
        return data


@dataclass(frozen=True)
class SliceSpec:
    """A named subset of the bundle's NF graph with its own SLO."""

    name: str
    nf_names: Tuple[str, ...]
    slo: Optional[ChainSLO] = None
    description: str = ""

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "name": self.name,
            "nfs": list(self.nf_names),
            "description": self.description,
        }
        if self.slo is not None:
            data["slo"] = self.slo.to_dict()
        return data


@dataclass(frozen=True)
class BundleSpec:
    """A versioned, named multi-chain service template."""

    name: str
    version: int
    description: str = ""
    nfs: Tuple[BundleNF, ...] = ()
    slices: Tuple[SliceSpec, ...] = ()

    @property
    def ref(self) -> str:
        """The catalogue reference, e.g. ``mobile-core@v2``."""
        return f"{self.name}@v{self.version}"

    def validate(self) -> None:
        if not self.name:
            raise BundleError("bundle name must be non-empty")
        if self.version < 1:
            raise BundleError(f"bundle version must be >= 1, got {self.version}")
        if not self.nfs:
            raise BundleError(f"bundle {self.ref} needs at least one NF")
        names = [nf.name for nf in self.nfs]
        if len(set(names)) != len(names):
            raise BundleError(f"bundle {self.ref} has duplicate NF names: {names}")
        known = set(names)
        for nf in self.nfs:
            if nf.min_replicas < 1 or nf.max_replicas < nf.min_replicas:
                raise BundleError(
                    f"bundle {self.ref} NF {nf.name!r} has invalid replica bounds "
                    f"[{nf.min_replicas}, {nf.max_replicas}]"
                )
            for dependency in nf.requires:
                if dependency not in known:
                    raise BundleError(
                        f"bundle {self.ref} NF {nf.name!r} requires unknown NF {dependency!r}"
                    )
        slice_names = [s.name for s in self.slices]
        if len(set(slice_names)) != len(slice_names):
            raise BundleError(f"bundle {self.ref} has duplicate slice names: {slice_names}")
        for slice_spec in self.slices:
            if not slice_spec.nf_names:
                raise BundleError(f"bundle {self.ref} slice {slice_spec.name!r} is empty")
            for nf_name in slice_spec.nf_names:
                if nf_name not in known:
                    raise BundleError(
                        f"bundle {self.ref} slice {slice_spec.name!r} references "
                        f"unknown NF {nf_name!r}"
                    )

    def slice(self, slice_name: str) -> SliceSpec:
        for slice_spec in self.slices:
            if slice_spec.name == slice_name:
                return slice_spec
        raise BundleError(
            f"bundle {self.ref} has no slice {slice_name!r}; "
            f"known: {[s.name for s in self.slices]}"
        )

    def slice_names(self) -> List[str]:
        return [slice_spec.name for slice_spec in self.slices]

    def nf_graph(self) -> str:
        """The NF traversal order, rendered (``amf -> smf -> upf``)."""
        return " -> ".join(nf.name for nf in self.nfs)

    def chain_for(self, slice_name: str = "") -> ServiceChain:
        """Compile this bundle (or one slice of it) into a ServiceChain.

        Every call builds a fresh chain: chains are per-assignment objects
        in the existing machinery.  The chain name carries the bundle ref
        (and slice), which is how telemetry identifies the version a live
        instance runs.
        """
        by_name = {nf.name: nf for nf in self.nfs}
        if slice_name:
            slice_spec = self.slice(slice_name)
            nf_names = slice_spec.nf_names
            slo = slice_spec.slo
            label = f"{self.ref}/{slice_name}"
        else:
            nf_names = tuple(nf.name for nf in self.nfs)
            slo = None
            label = self.ref
        specs = [
            NFSpec(
                nf_type=by_name[nf_name].nf_type,
                config=by_name[nf_name].config_dict(),
                requirements=by_name[nf_name].requirements,
            )
            for nf_name in nf_names
        ]
        return ServiceChain(specs, name=label, slo=slo)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "version": self.version,
            "ref": self.ref,
            "description": self.description,
            "nfs": [nf.to_dict() for nf in self.nfs],
            "slices": [slice_spec.to_dict() for slice_spec in self.slices],
        }


class BundleCatalogue:
    """The registry of deployable service bundles, keyed by name@version."""

    def __init__(self) -> None:
        self._bundles: Dict[str, Dict[int, BundleSpec]] = {}

    def register(self, spec: BundleSpec) -> BundleSpec:
        spec.validate()
        versions = self._bundles.setdefault(spec.name, {})
        if spec.version in versions:
            raise BundleError(f"bundle {spec.ref} is already registered")
        versions[spec.version] = spec
        return spec

    def get(self, name: str, version: int = 0) -> BundleSpec:
        """Resolve a bundle; ``version=0`` means the latest registered."""
        versions = self._bundles.get(name)
        if not versions:
            raise BundleError(f"unknown bundle {name!r}; known: {self.names()}")
        if version == 0:
            return versions[max(versions)]
        try:
            return versions[version]
        except KeyError as exc:
            raise BundleError(
                f"bundle {name!r} has no version {version}; known: {sorted(versions)}"
            ) from exc

    def __contains__(self, name: str) -> bool:
        return name in self._bundles

    def names(self) -> List[str]:
        return sorted(self._bundles)

    def versions(self, name: str) -> List[int]:
        return sorted(self._bundles.get(name, {}))

    def refs(self) -> List[str]:
        """Every registered ``name@vN`` reference, sorted."""
        return [
            f"{name}@v{version}"
            for name in self.names()
            for version in self.versions(name)
        ]

    def specs(self) -> List[BundleSpec]:
        return [self.get(name, version) for name in self.names() for version in self.versions(name)]


def default_catalogue() -> BundleCatalogue:
    """The bundle catalogue shipped with the reproduction.

    ``mobile-core`` mirrors the charmed-OSM OAI shape: AMF/SMF control NFs
    and a UPF user plane, instantiable per slice (``embb`` runs the full
    graph under a tight SLO, ``iot`` skips the SMF under a loose one).  v2
    tightens the AMF signalling cadence and turns on UPF edge breakout --
    exactly the kind of config-only revision a rolling upgrade rolls out.
    """
    catalogue = BundleCatalogue()
    slices = (
        SliceSpec(
            name="embb",
            nf_names=("amf", "smf", "upf"),
            slo=ChainSLO(max_latency_s=0.05, min_bandwidth_mbps=6.0),
            description="high-throughput video slice",
        ),
        SliceSpec(
            name="iot",
            nf_names=("amf", "upf"),
            slo=ChainSLO(max_latency_s=0.25, min_bandwidth_mbps=0.5),
            description="massive-IoT slice",
        ),
    )
    catalogue.register(
        BundleSpec(
            name="mobile-core",
            version=1,
            description="OAI-shaped edge mobile core (AMF/SMF/UPF)",
            nfs=(
                BundleNF(
                    name="amf",
                    nf_type="amf",
                    config=(("signalling_interval_s", 5.0),),
                    requirements=NFRequirements(cpu_units=0.5),
                    placement_hint="edge",
                ),
                BundleNF(
                    name="smf",
                    nf_type="smf",
                    config=(("session_ttl_s", 60.0),),
                    requires=("amf",),
                ),
                BundleNF(
                    name="upf",
                    nf_type="upf",
                    config=(("edge_breakout", False),),
                    max_replicas=4,
                    placement_hint="edge",
                    requires=("smf",),
                ),
            ),
            slices=slices,
        )
    )
    catalogue.register(
        BundleSpec(
            name="mobile-core",
            version=2,
            description="mobile core v2: faster signalling, UPF edge breakout on",
            nfs=(
                BundleNF(
                    name="amf",
                    nf_type="amf",
                    config=(("signalling_interval_s", 4.0),),
                    requirements=NFRequirements(cpu_units=0.5),
                    placement_hint="edge",
                ),
                BundleNF(
                    name="smf",
                    nf_type="smf",
                    config=(("session_ttl_s", 90.0),),
                    requires=("amf",),
                ),
                BundleNF(
                    name="upf",
                    nf_type="upf",
                    config=(("edge_breakout", True), ("breakout_ports", (8080,))),
                    max_replicas=4,
                    placement_hint="edge",
                    requires=("smf",),
                ),
            ),
            slices=slices,
        )
    )
    return catalogue


# ----------------------------------------------------------------- upgrades


@dataclass
class BundleInstance:
    """One live bundle instantiation the orchestrator tracks."""

    assignment_id: str
    bundle: str
    version: int
    slice_name: str
    client_ip: str
    fleet: str = ""

    @property
    def ref(self) -> str:
        return f"{self.bundle}@v{self.version}"


@dataclass
class UpgradeRecord:
    """One instance's walk through the rolling-upgrade state machine.

    Deliberately keyed by ``client_ip`` (not assignment id) in telemetry:
    assignment ids come from a process-global counter and would break
    back-to-back replay digests.
    """

    client_ip: str
    bundle: str
    slice_name: str
    from_version: int
    to_version: int
    mode: str
    started_at: float
    completed_at: Optional[float] = None
    rounds: int = 0
    retries: int = 0
    state_mb: float = 0.0
    coverage_gap_s: Optional[float] = None
    downtime_s: Optional[float] = None
    success: bool = False
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "client_ip": self.client_ip,
            "bundle": self.bundle,
            "slice": self.slice_name,
            "from_version": self.from_version,
            "to_version": self.to_version,
            "mode": self.mode,
            "started_at": self.started_at,
            "completed_at": self.completed_at,
            "rounds": self.rounds,
            "retries": self.retries,
            "state_mb": round(self.state_mb, 6),
            "coverage_gap_s": self.coverage_gap_s,
            "downtime_s": self.downtime_s,
            "success": self.success,
            "detail": self.detail,
        }


UPGRADE_MODES = ("precopy", "stateful")


class BundleUpgradeOrchestrator:
    """Walks live bundle instances through ``v1 -> v2`` with zero coverage gap.

    One instance is in transition at a time (rolling), in registration
    order -- deterministic and tier-invariant, since instances register in
    scenario-controlled order and every control interaction goes through
    the Manager tier methods (whose channels are the same per-station
    objects at every shard/region count).

    Per-instance state machine::

        stage (boot v2 unsteered) --> copy (precopy rounds | stateful
        freeze) --> cutover (atomic re-key + steer, one simulator event)

    Any step that finds the world changed -- assignment gone or not ACTIVE,
    split across stations, agent down (FaultInjector crash window), staged
    containers dead -- aborts the staged chain and retries after
    ``retry_interval_s``, up to ``max_retries`` times.  The live chain is
    never touched until the cutover event itself, so a failed attempt
    leaves coverage exactly as it was.
    """

    def __init__(
        self,
        simulator: Simulator,
        manager,
        engine,
        catalogue: Optional[BundleCatalogue] = None,
        retry_interval_s: float = 1.0,
        max_retries: int = 60,
    ) -> None:
        self.simulator = simulator
        self.manager = manager
        self.engine = engine
        self.catalogue = catalogue if catalogue is not None else default_catalogue()
        self.retry_interval_s = retry_interval_s
        self.max_retries = max_retries
        #: assignment_id -> instance, insertion-ordered (walk order).
        self.instances: Dict[str, BundleInstance] = {}
        self.records: List[UpgradeRecord] = []
        self.cutovers = 0
        self.retries = 0
        self.aborts = 0
        self.failures = 0
        self._jobs: List[Tuple[str, BundleSpec, str]] = []
        self._busy = False
        self._stopped = False

    # ------------------------------------------------------------- registry

    def register_instance(
        self,
        assignment_id: str,
        bundle: str,
        version: int,
        slice_name: str,
        client_ip: str,
        fleet: str = "",
    ) -> BundleInstance:
        """Track one live instantiation (called by the ScenarioRunner on a
        successful bundle attach)."""
        instance = BundleInstance(
            assignment_id=assignment_id,
            bundle=bundle,
            version=version,
            slice_name=slice_name,
            client_ip=client_ip,
            fleet=fleet,
        )
        self.instances[assignment_id] = instance
        return instance

    def forget_instance(self, assignment_id: str) -> None:
        self.instances.pop(assignment_id, None)

    def live_refs(self) -> Dict[str, int]:
        """Census of live instances by ``bundle@vN`` reference."""
        census: Dict[str, int] = {}
        for instance in self.instances.values():
            census[instance.ref] = census.get(instance.ref, 0) + 1
        return dict(sorted(census.items()))

    # -------------------------------------------------------------- control

    def upgrade_bundle(self, bundle: str, to_version: int, mode: str = "precopy") -> int:
        """Queue a rolling upgrade of every live ``bundle`` instance not yet
        at ``to_version``; returns how many instances were queued."""
        if mode not in UPGRADE_MODES:
            raise BundleError(f"unknown upgrade mode {mode!r}; valid: {UPGRADE_MODES}")
        spec = self.catalogue.get(bundle, to_version)
        queued = 0
        for assignment_id, instance in self.instances.items():
            if instance.bundle == bundle and instance.version != to_version:
                self._jobs.append((assignment_id, spec, mode))
                queued += 1
        self._advance()
        return queued

    def shutdown(self) -> None:
        """Stop driving the walk (pending simulator callbacks become no-ops)."""
        self._stopped = True

    # -------------------------------------------------------- state machine

    def _advance(self) -> None:
        if self._busy or self._stopped or not self._jobs:
            return
        assignment_id, spec, mode = self._jobs.pop(0)
        instance = self.instances.get(assignment_id)
        if instance is None or instance.version == spec.version:
            self._advance()
            return
        self._busy = True
        record = UpgradeRecord(
            client_ip=instance.client_ip,
            bundle=instance.bundle,
            slice_name=instance.slice_name,
            from_version=instance.version,
            to_version=spec.version,
            mode=mode,
            started_at=self.simulator.now,
        )
        self.records.append(record)
        self._try_stage(instance, spec, mode, record)

    def _finish_job(self, record: UpgradeRecord, success: bool, detail: str) -> None:
        record.success = success
        record.detail = detail
        record.completed_at = self.simulator.now
        if not success:
            self.failures += 1
        self._busy = False
        self._advance()

    def _retry(self, instance: BundleInstance, spec: BundleSpec, mode: str,
               record: UpgradeRecord, reason: str) -> None:
        """Schedule another attempt (or give up past the retry budget)."""
        if self._stopped:
            return
        if record.retries >= self.max_retries:
            self._finish_job(record, False, f"gave up after {record.retries} retries: {reason}")
            return
        record.retries += 1
        self.retries += 1
        self.simulator.schedule(self.retry_interval_s, self._try_stage, instance, spec, mode, record)

    def _instance_ready(self, instance: BundleInstance) -> Tuple[bool, str]:
        """Preconditions every attempt re-checks against the live world."""
        assignment = self.manager.find_assignment(instance.assignment_id)
        if assignment is None:
            return False, "assignment unknown"
        if assignment.state is not AssignmentState.ACTIVE:
            return False, f"assignment {assignment.state.value}"
        if assignment.is_split:
            # A split embedding's head/remote segments would need a
            # coordinated multi-station cutover; stall until it re-merges.
            return False, "assignment is split across stations"
        agent = self.manager.agents.get(assignment.station_name)
        if agent is None or not agent.is_running:
            return False, "station agent down"
        return True, ""

    def _try_stage(self, instance: BundleInstance, spec: BundleSpec, mode: str,
                   record: UpgradeRecord) -> None:
        if self._stopped:
            return
        if instance.assignment_id not in self.instances:
            self._finish_job(record, False, "instance detached")
            return
        ready, reason = self._instance_ready(instance)
        if not ready:
            self._retry(instance, spec, mode, record, reason)
            return
        assignment = self.manager.find_assignment(instance.assignment_id)
        staged_station = assignment.station_name
        new_chain = spec.chain_for(instance.slice_name)

        def staged(success: bool, detail: str) -> None:
            if self._stopped:
                return
            if not success:
                self._abort_staged(instance.assignment_id, staged_station)
                self._retry(instance, spec, mode, record, f"staging failed: {detail}")
                return
            current = self.manager.find_assignment(instance.assignment_id)
            if current is None or current.station_name != staged_station:
                # The client roamed mid-boot: the staged chain sits at the
                # wrong station now.  Drop it there and start over.
                self._abort_staged(instance.assignment_id, staged_station)
                self._retry(instance, spec, mode, record, "assignment moved during staging")
                return
            self._copy_phase(instance, spec, mode, record, new_chain, staged_station)

        self.manager.stage_chain_upgrade(instance.assignment_id, new_chain, staged)

    def _abort_staged(self, assignment_id: str, station_name: str) -> None:
        """Remove a staged replacement at the station it was booted on.

        Targets the station directly (not the assignment's *current* home):
        a client may have roamed since staging, and the leak would otherwise
        sit at the old station forever.
        """
        agent = self.manager.agents.get(station_name)
        if agent is not None:
            self.manager.channels[station_name].call(
                agent.remove_chain, upgrade_staging_id(assignment_id)
            )
        self.aborts += 1

    # ----------------------------------------------------------- copy phase

    def _export_live_state(self, instance: BundleInstance, station_name: str) -> Optional[List[Dict[str, object]]]:
        """Synchronously snapshot the live chain's NF state (StatefulPolicy
        reads the old agent the same way)."""
        agent = self.manager.agents.get(station_name)
        if agent is None:
            return None
        return agent.export_chain_state(instance.assignment_id)

    def _copy_phase(self, instance: BundleInstance, spec: BundleSpec, mode: str,
                    record: UpgradeRecord, new_chain: ServiceChain, station: str) -> None:
        if self._stopped:
            return
        if mode == "stateful":
            self._stateful_freeze(instance, spec, record, new_chain, station)
        else:
            states = self._export_live_state(instance, station) or []
            state_mb = self.engine.serialized_state_mb(states)
            record.state_mb = state_mb
            # Round 0 moves the full state while the old chain keeps
            # serving; each later round moves the fraction dirtied since.
            copy_time = self.engine.estimate_copy_time_s(station, state_mb)
            self.simulator.schedule(
                copy_time, self._precopy_round, instance, spec, record, new_chain, station,
                state_mb * self.engine.precopy_dirty_fraction, 1,
            )

    def _precopy_round(self, instance: BundleInstance, spec: BundleSpec, record: UpgradeRecord,
                       new_chain: ServiceChain, station: str, delta_mb: float, round_index: int) -> None:
        if self._stopped:
            return
        record.rounds = round_index
        next_delta_time = self.engine.estimate_copy_time_s(station, delta_mb)
        if (
            next_delta_time <= self.engine.precopy_downtime_target_s
            or round_index >= self.engine.precopy_max_rounds
        ):
            # Converged (or out of rounds): the final delta rides inside the
            # freeze window.  The old chain stays steered until the cutover
            # event, so the coverage gap is structurally zero; the freeze is
            # the *downtime* (the window where new state stops applying).
            final_states = self._export_live_state(instance, station)
            if final_states is None:
                self._abort_staged(instance.assignment_id, station)
                self._retry(instance, spec, "precopy", record, "station lost before final copy")
                return
            record.downtime_s = next_delta_time
            record.coverage_gap_s = 0.0
            self.simulator.schedule(
                next_delta_time, self._do_cutover, instance, spec, "precopy",
                record, new_chain, station, final_states,
            )
            return
        self.simulator.schedule(
            next_delta_time, self._precopy_round, instance, spec, record, new_chain, station,
            delta_mb * self.engine.precopy_dirty_fraction, round_index + 1,
        )

    def _stateful_freeze(self, instance: BundleInstance, spec: BundleSpec, record: UpgradeRecord,
                         new_chain: ServiceChain, station: str) -> None:
        """Suspend the live chain, copy everything, cut over: simple, but the
        coverage gap is the whole copy."""

        def suspended(gap_start: float) -> None:
            if self._stopped:
                return
            final_states = self._export_live_state(instance, station) or []
            state_mb = self.engine.serialized_state_mb(final_states)
            record.state_mb = state_mb
            copy_time = self.engine.estimate_copy_time_s(station, state_mb)
            record.coverage_gap_s = None  # measured at the cutover event
            self.simulator.schedule(
                copy_time, self._do_cutover, instance, spec, "stateful",
                record, new_chain, station, final_states, gap_start,
            )

        self.manager.suspend_chain_upgrade(instance.assignment_id, suspended)

    # -------------------------------------------------------------- cutover

    def _do_cutover(self, instance: BundleInstance, spec: BundleSpec, mode: str,
                    record: UpgradeRecord, new_chain: ServiceChain, station: str,
                    final_states: List[Dict[str, object]],
                    gap_start: Optional[float] = None) -> None:
        if self._stopped:
            return

        def done(success: bool, detail: str) -> None:
            if self._stopped:
                return
            if not success:
                self._abort_staged(instance.assignment_id, station)
                if mode == "stateful":
                    self._resume_suspended(instance.assignment_id, station)
                self._retry(instance, spec, mode, record, f"cutover failed: {detail}")
                return
            if mode == "stateful" and gap_start is not None:
                gap = self.simulator.now - gap_start
                record.coverage_gap_s = gap
                record.downtime_s = gap
            instance.version = spec.version
            self.cutovers += 1
            self._finish_job(record, True, "upgraded")

        current = self.manager.find_assignment(instance.assignment_id)
        if current is None or current.station_name != station:
            self._abort_staged(instance.assignment_id, station)
            self._retry(instance, spec, mode, record, "assignment moved before cutover")
            return
        self.manager.cutover_chain_upgrade(instance.assignment_id, new_chain, final_states, done)

    def _resume_suspended(self, assignment_id: str, station_name: str) -> None:
        """A stateful cutover failed after the suspend: put the old chain's
        steering back exactly as the scheduler last wanted it."""
        agent = self.manager.agents.get(station_name)
        if agent is None:
            return
        deployment = agent.deployments.get(assignment_id)
        if deployment is not None and deployment.desired_active:
            self.manager.channels[station_name].call(
                agent.set_chain_active, assignment_id, True
            )

    # ------------------------------------------------------------ telemetry

    def telemetry(self) -> Dict[str, object]:
        """Digest-safe summary: census, counters, per-upgrade records.

        No assignment ids anywhere -- they come from a process-global
        counter and would break back-to-back replay digests.
        """
        gaps = [r.coverage_gap_s for r in self.records if r.coverage_gap_s is not None]
        downtimes = [r.downtime_s for r in self.records if r.downtime_s is not None]
        return {
            "instances": self.live_refs(),
            "cutovers": self.cutovers,
            "retries": self.retries,
            "aborts": self.aborts,
            "failures": self.failures,
            "max_coverage_gap_s": max(gaps) if gaps else 0.0,
            "max_downtime_s": max(downtimes) if downtimes else 0.0,
            "records": [record.to_dict() for record in self.records],
        }
