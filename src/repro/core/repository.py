"""The NF catalogue: function types -> container images -> NF classes.

The paper's central repository stores the NF container images Agents pull on
demand.  :class:`NFRepository` couples the image registry from
:mod:`repro.containers.image` with the configuration needed to turn a pulled
image into a running function (its :mod:`repro.nfs` class and default
constructor arguments), mirroring how the real GNF repository associates
image names with the NF binaries they package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.containers.image import ContainerImage, ImageRegistry, default_nf_images
from repro.core.errors import CatalogError


@dataclass
class CatalogEntry:
    """One NF type the provider can deploy."""

    nf_type: str
    image: ContainerImage
    default_config: Dict[str, Any] = field(default_factory=dict)
    description: str = ""

    @property
    def image_reference(self) -> str:
        return self.image.reference

    @property
    def nf_class(self) -> str:
        return self.image.nf_class


class NFRepository:
    """The provider's catalogue of deployable NF types."""

    def __init__(self, registry: Optional[ImageRegistry] = None) -> None:
        self.registry = registry or ImageRegistry()
        self._catalog: Dict[str, CatalogEntry] = {}

    # -------------------------------------------------------------- catalog

    def register(
        self,
        nf_type: str,
        image: ContainerImage,
        default_config: Optional[Dict[str, Any]] = None,
        description: str = "",
    ) -> CatalogEntry:
        """Publish the image and record how to instantiate the NF it packages."""
        self.registry.push(image)
        entry = CatalogEntry(
            nf_type=nf_type,
            image=image,
            default_config=dict(default_config or {}),
            description=description or image.description,
        )
        self._catalog[nf_type] = entry
        return entry

    def lookup(self, nf_type: str) -> CatalogEntry:
        try:
            return self._catalog[nf_type]
        except KeyError as exc:
            raise CatalogError(
                f"unknown NF type {nf_type!r}; known types: {sorted(self._catalog)}"
            ) from exc

    def __contains__(self, nf_type: str) -> bool:
        return nf_type in self._catalog

    def types(self) -> List[str]:
        return sorted(self._catalog)

    def describe(self) -> List[Dict[str, object]]:
        """Catalogue listing shown by the UI."""
        return [
            {
                "nf_type": entry.nf_type,
                "image": entry.image_reference,
                "image_size_mb": entry.image.size_mb,
                "default_memory_mb": entry.image.default_memory_mb,
                "description": entry.description,
            }
            for entry in self._catalog.values()
        ]

    # ------------------------------------------------------------- defaults

    @classmethod
    def with_default_catalog(cls) -> "NFRepository":
        """A repository pre-loaded with the GNF NF images used by the demo."""
        repository = cls()
        type_by_image = {
            "gnf/firewall": "firewall",
            "gnf/http-filter": "http-filter",
            "gnf/dns-loadbalancer": "dns-loadbalancer",
            "gnf/rate-limiter": "rate-limiter",
            "gnf/nat": "nat",
            "gnf/cache": "cache",
            "gnf/ids": "ids",
            "gnf/flow-monitor": "flow-monitor",
            "gnf/load-balancer": "load-balancer",
            "gnf/amf": "amf",
            "gnf/smf": "smf",
            "gnf/upf": "upf",
        }
        for image in default_nf_images():
            nf_type = type_by_image.get(image.name)
            if nf_type is not None:
                repository.register(nf_type, image, description=image.description)
        return repository
