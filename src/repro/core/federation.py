"""Federated control plane: many regions behind one thin global frontend.

PR 3's :class:`~repro.core.sharding.ShardedManager` scales *one* region to
many shards; a production operator runs a fleet of regions.  This module
adds that tier:

* :class:`FederatedManager` owns N regions, each a full ``ShardedManager``
  with its own shard set over a contiguous band of stations.  Placement and
  embedding run once, globally, on the federation frontend (the thin-global
  / fat-local split: regions hold all the per-assignment state, the
  frontend holds only the client directory, the assignment->region index
  and the placement engine).
* Inter-region roaming reuses the shard-handoff machinery one tier up: when
  the MigrationEngine lands a client's head segment on a station owned by a
  different region, the source region *releases* the assignment (shard
  table + scheduler) and the target region *adopts* it, recorded as a
  :class:`RegionHandoff`.  Remote embedded segments are dispatched and torn
  down by the federation itself (regions only hold channels for their own
  band), so a split chain's tail stays correct across the move.
* Telemetry is aggregated by **streaming rollups**
  (:mod:`repro.telemetry.rollup`): every shard delivery pushes its deltas
  up region aggregators into the global rollup, so :meth:`overview` and
  ``hotspots`` read O(regions) pre-aggregated state.
  :meth:`full_scan_overview` recomputes the same summary by brute force --
  the equivalence tests and benchmark E14 compare the two.

Determinism contract (the federation test suite's digest-invariance
matrix): a scenario replays to a byte-identical
:class:`~repro.scenarios.digest.MetricsDigest` whether its stations are
served by 1 region x K shards or R regions x K shards each.  Three choices
make that hold:

1. **One global ControlBus.**  Per-region buses would flush same-timestamp
   ticks in first-enqueue order per bus, reordering a cross-region
   disconnect@A / connect@B pair relative to the single-region run and
   diverging roaming decisions.  The federation therefore runs a single bus
   with globally-numbered shard indices; delivery routes *through* the
   owning region so the rollup pushes still happen region-locally.
2. **Global placement, regional execution.**  The frontend's engine scores
   the network-wide station view exactly like a single Manager's would;
   regions never re-place.
3. **Synchronous rollups.**  Rollup pushes are plain function calls on the
   delivery path -- no extra simulator events, so the event timeline is
   unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.agent import GNFAgent
from repro.core.api import AgentHeartbeat, ClientEvent, ControlChannel, NFNotificationMessage
from repro.core.chain import ServiceChain
from repro.core.errors import UnknownAgentError, UnknownAssignmentError, UnknownClientError
from repro.core.manager import (
    Assignment,
    AssignmentState,
    ClientEventListener,
    make_assignment,
    track_client_event,
)
from repro.core.notifications import NotificationCenter
from repro.core.placement import (
    PlacementDecision,
    PlacementEngine,
    PlacementStrategy,
    StationView,
)
from repro.core.policy import TrafficSelector
from repro.core.repository import NFRepository
from repro.core.scheduler import TimeSchedule
from repro.core.sharding import (
    ControlBus,
    ShardedManager,
    StationShardMap,
    _ShardSchedulerGroup,
)
from repro.netem.simulator import Simulator
from repro.netem.topology import EdgeTopology
from repro.telemetry.rollup import GlobalTelemetry


@dataclass
class RegionHandoff:
    """One cross-region assignment migration, as the federation recorded it.

    The region-tier analogue of :class:`~repro.core.sharding.ShardHandoff`:
    produced when roaming moves a client's head segment onto a station owned
    by a different region.  The source region released the assignment, the
    target region adopted it, and this message is the durable record.
    """

    assignment_id: str
    client_ip: str
    from_region: int
    to_region: int
    from_station: str
    to_station: str
    time: float
    #: Carried scheduler state, same contract as the shard-level handoff.
    schedule_active: bool = True


class _FederatedHealth:
    """Network-wide liveness served from the streaming health rollups.

    List queries are O(regions) merges of per-region cached views; point
    queries hit the owning region's rollup directly.  Values are exact:
    :class:`~repro.telemetry.rollup.HealthRollup` replicates the monitor's
    ``(now - last) <= timeout`` predicate bit-for-bit.
    """

    def __init__(self, federation: "FederatedManager") -> None:
        self._federation = federation

    def online_stations(self, now: float) -> List[str]:
        return self._federation.telemetry.online_stations(now)

    def offline_stations(self, now: float) -> List[str]:
        return self._federation.telemetry.offline_stations(now)

    def is_online(self, station_name: str, now: float) -> bool:
        region = self._federation.region_of(station_name)
        return region.telemetry.health.is_online(station_name, now)

    def heartbeats_received(self, station_name: str) -> int:
        return self._federation.region_of(station_name).health.heartbeats_received(station_name)

    def __len__(self) -> int:
        return sum(len(region.telemetry.health) for region in self._federation.regions)


class _FederatedHotspots:
    """Network-wide hotspot view: membership from the global rollup, full
    records (rarely needed) merged from the per-shard detectors."""

    def __init__(self, federation: "FederatedManager") -> None:
        self._federation = federation

    def hotspot_stations(self) -> List[str]:
        return self._federation.telemetry.hotspots.stations()

    @property
    def hotspots(self):
        found = [
            hotspot
            for region in self._federation.regions
            for shard in region.shards
            for hotspot in shard.hotspots.hotspots
        ]
        found.sort(key=lambda hotspot: (hotspot.detected_at, hotspot.station_name))
        return found

    def recent_hotspots(self, since: float):
        return [hotspot for hotspot in self.hotspots if hotspot.detected_at >= since]


class FederatedManager:
    """N regions (each a ShardedManager) behind one thin global frontend.

    Drop-in for :class:`~repro.core.manager.GNFManager` /
    :class:`~repro.core.sharding.ShardedManager`: the same attach / detach /
    register / query API, the same roaming hook
    (:meth:`assignment_station_changed`), the same aggregate views -- but
    ``overview()`` and ``hotspots`` are served from the streaming telemetry
    rollups instead of scanning every station.
    """

    def __init__(
        self,
        simulator: Simulator,
        region_count: int,
        shards_per_region: int = 1,
        station_count: Optional[int] = None,
        repository: Optional[NFRepository] = None,
        topology: Optional[EdgeTopology] = None,
        placement: Optional[PlacementStrategy] = None,
        heartbeat_timeout_s: float = 10.0,
        placement_engine: Optional[PlacementEngine] = None,
    ) -> None:
        if region_count < 1:
            raise ValueError(f"region_count must be >= 1, got {region_count}")
        if shards_per_region < 1:
            raise ValueError(f"shards_per_region must be >= 1, got {shards_per_region}")
        self.simulator = simulator
        self.repository = repository or NFRepository.with_default_catalog()
        self.topology = topology
        if station_count is None:
            station_count = len(topology.stations) if topology is not None else region_count
        station_count = max(1, station_count)
        if region_count > station_count:
            raise ValueError(
                f"region_count ({region_count}) cannot exceed station_count ({station_count})"
            )
        # Station -> region routing: the same contiguous-band scheme shards
        # use, one tier up, so geographically adjacent stations share a
        # region and cross-region roams stay the rare case.
        self.region_map = StationShardMap(station_count=station_count, shard_count=region_count)
        self.shards_per_region = shards_per_region
        # Global placement runs here, against the network-wide station view,
        # exactly like a single Manager's engine would -- determinism pillar
        # (2) in the module docstring.
        self.placement_engine = placement_engine or PlacementEngine(
            simulator, strategy=placement, repository=self.repository
        )
        self.placement_engine.bind(
            views=self.station_views,
            on_admit=self._deploy_queued_assignment,
            on_timeout=self._fail_queued_assignment,
            locate=lambda client_ip: self.client_locations.get(client_ip),
        )
        # One provider-global notification centre shared by every region.
        self.notifications = NotificationCenter()
        # The streaming rollup tree: regions attach their aggregation nodes
        # below this root, shards push deltas region-locally, and every push
        # propagates here.
        self.telemetry = GlobalTelemetry()
        self.regions: List[ShardedManager] = []
        for region_index in range(region_count):
            lo, hi = self.region_map.band(region_index)
            region = ShardedManager(
                simulator,
                shard_count=shards_per_region,
                repository=self.repository,
                topology=topology,
                heartbeat_timeout_s=heartbeat_timeout_s,
                station_range=(lo, hi),
                notifications=self.notifications,
                telemetry=self.telemetry.region(f"region-{region_index}", heartbeat_timeout_s),
            )
            # Regions only hold channels for their own band; split
            # embeddings may land segments anywhere, so the federation
            # dispatches/tears down remote segments on their behalf.
            region.remote_segment_owner = self
            # Region-level tracking keeps the region directory; this
            # listener then runs the *global* tracking (directory + roaming)
            # synchronously in the same delivery event.
            region.add_client_event_listener(self._track_global_client_event)
            self.regions.append(region)
        # Determinism pillar (1): one globally-ordered bus across all
        # regions' shards, indexed region_index * shards_per_region + local.
        self.bus = ControlBus(simulator, region_count * shards_per_region)
        self.bus.bind(
            heartbeats=self._deliver_heartbeats,
            notifications=self._deliver_notifications,
            event=self._deliver_client_event,
        )
        self.agents: Dict[str, GNFAgent] = {}
        self.channels: Dict[str, ControlChannel] = {}
        self.assignments: Dict[str, Assignment] = {}
        self._assignment_region: Dict[str, int] = {}
        self.client_locations: Dict[str, str] = {}
        self.client_names: Dict[str, str] = {}
        self.roaming = None  # set by RoamingCoordinator, exactly like GNFManager
        self._client_event_listeners: List[ClientEventListener] = []
        self.handoffs: List[RegionHandoff] = []
        self.health = _FederatedHealth(self)
        self.hotspots = _FederatedHotspots(self)
        self.scheduler = _ShardSchedulerGroup(
            [shard for region in self.regions for shard in region.shards]
        )

    # ----------------------------------------------------------- properties

    @property
    def placement(self) -> PlacementStrategy:
        """The federation's global placement strategy (engine-delegated)."""
        return self.placement_engine.strategy

    @placement.setter
    def placement(self, strategy: PlacementStrategy) -> None:
        self.placement_engine.strategy = strategy

    @property
    def region_count(self) -> int:
        return len(self.regions)

    @property
    def total_shard_count(self) -> int:
        return len(self.regions) * self.shards_per_region

    @property
    def heartbeats_processed(self) -> int:
        return self.telemetry.counters.get("heartbeats_processed")

    @property
    def client_events_processed(self) -> int:
        return self.telemetry.counters.get("client_events_processed")

    @property
    def last_heartbeat(self) -> Dict[str, AgentHeartbeat]:
        merged: Dict[str, AgentHeartbeat] = {}
        for region in self.regions:
            merged.update(region.last_heartbeat)
        return merged

    def region_index_of(self, station_name: str) -> int:
        """The region index owning ``station_name``."""
        return self.region_map.shard_for(station_name)

    def region_of(self, station_name: str) -> ShardedManager:
        """The region instance owning ``station_name``."""
        return self.regions[self.region_map.shard_for(station_name)]

    def _global_shard_index(self, station_name: str) -> int:
        region_index = self.region_map.shard_for(station_name)
        local_index = self.regions[region_index].shard_map.shard_for(station_name)
        return region_index * self.shards_per_region + local_index

    # --------------------------------------------------------- registration

    def register_agent(
        self, agent: GNFAgent, control_latency_s: Optional[float] = None
    ) -> ControlChannel:
        """Connect an Agent to its owning region's shard, with the agent's
        senders routed over the single federation-global bus."""
        station_name = agent.station.name
        region = self.region_of(station_name)
        global_index = self._global_shard_index(station_name)

        def sink_factory(channel: ControlChannel):
            latency = channel.latency_s
            return (
                self.bus.heartbeat_sink(global_index, latency, channel),
                self.bus.event_sink(global_index, latency, channel),
                self.bus.notification_sink(global_index, latency, channel),
            )

        channel = region.register_agent(agent, control_latency_s, sink_factory=sink_factory)
        self.agents[station_name] = agent
        self.channels[station_name] = channel
        return channel

    def agent(self, station_name: str) -> GNFAgent:
        try:
            return self.agents[station_name]
        except KeyError as exc:
            raise UnknownAgentError(station_name) from exc

    def start(self) -> "FederatedManager":
        """Start every region (each starts its shards' schedulers)."""
        for region in self.regions:
            region.start()
        return self

    # ------------------------------------------------------------ attach API

    def attach_chain(
        self,
        client_ip: str,
        chain: ServiceChain,
        selector: Optional[TrafficSelector] = None,
        schedule: Optional[TimeSchedule] = None,
        station_name: Optional[str] = None,
    ) -> Assignment:
        """Place a chain using the global station view, then route the attach
        to the region owning the chosen station (which routes it on to the
        owning shard).  Admission control runs here, network-wide."""
        client_station = station_name or self.client_locations.get(client_ip)
        if client_station is None:
            raise UnknownClientError(
                f"client {client_ip!r} has no known location; pass station_name explicitly"
            )
        decision = self.placement_engine.place(
            client_station, self.station_views(client_station), chain, client_ip=client_ip
        )
        assignment = make_assignment(
            self.simulator.now, client_ip, chain, selector, schedule, decision.station_name
        )
        # Stream assignment-state deltas (active count, enabled NFs) into
        # the global rollup; the hook travels with the object across
        # region handoffs.
        assignment.on_state_change = self._assignment_state_changed
        self.assignments[assignment.assignment_id] = assignment
        if decision.admitted:
            assignment.apply_segments(decision.segments)
            region_index = self.region_map.shard_for(decision.station_name)
            self._assignment_region[assignment.assignment_id] = region_index
            self.regions[region_index].accept_placed_assignment(assignment)
        elif decision.queued:
            self.placement_engine.enqueue(assignment, client_station, chain)
        else:
            assignment.state = AssignmentState.FAILED
            assignment.failure_reason = decision.reason
        return assignment

    def attach_nf(
        self,
        client_ip: str,
        nf_type: str,
        config: Optional[Dict[str, object]] = None,
        selector: Optional[TrafficSelector] = None,
        schedule: Optional[TimeSchedule] = None,
        station_name: Optional[str] = None,
    ) -> Assignment:
        """Attach a single NF (convenience wrapper, mirrors GNFManager)."""
        return self.attach_chain(
            client_ip,
            ServiceChain.single(nf_type, config=config),
            selector=selector,
            schedule=schedule,
            station_name=station_name,
        )

    def _deploy_queued_assignment(self, assignment: Assignment, decision: PlacementDecision) -> None:
        """Engine callback: hand a finally-admitted assignment to its region."""
        if assignment.state is not AssignmentState.PENDING:
            return  # detached (or failed) while waiting in the queue
        assignment.station_name = decision.station_name
        assignment.station_history[-1] = decision.station_name
        assignment.apply_segments(decision.segments)
        region_index = self.region_map.shard_for(decision.station_name)
        self._assignment_region[assignment.assignment_id] = region_index
        self.regions[region_index].accept_placed_assignment(assignment)

    def _fail_queued_assignment(self, assignment: Assignment, reason: str) -> None:
        """Engine callback: a queued placement timed out on the frontend."""
        if assignment.state is AssignmentState.PENDING:
            assignment.state = AssignmentState.FAILED
            assignment.failure_reason = reason

    def detach(self, assignment_id: str) -> Assignment:
        """Tear down an assignment in whichever region currently owns it."""
        region_index = self._assignment_region.get(assignment_id)
        if region_index is None:
            # Never handed to a region: still queued for admission on the
            # frontend (or already failed there).  Nothing was deployed.
            assignment = self.assignments.get(assignment_id)
            if assignment is None:
                raise UnknownAssignmentError(assignment_id)
            self.placement_engine.cancel(assignment_id)
            assignment.state = AssignmentState.REMOVED
            if self.roaming is not None:
                self.roaming.assignment_released(assignment_id)
            return assignment
        assignment = self.regions[region_index].detach(assignment_id)
        # Regions have no roaming hook (roaming is federation-global), so
        # release the coordinator's staged state here.
        if self.roaming is not None:
            self.roaming.assignment_released(assignment_id)
        return assignment

    # ---------------------------------------------------------- bus delivery

    def _deliver_heartbeats(self, global_index: int, batch: List[AgentHeartbeat]) -> None:
        region_index, local_index = divmod(global_index, self.shards_per_region)
        self.regions[region_index]._deliver_heartbeats(local_index, batch)

    def _deliver_notifications(
        self, global_index: int, batch: List[NFNotificationMessage]
    ) -> None:
        region_index, local_index = divmod(global_index, self.shards_per_region)
        self.regions[region_index]._deliver_notifications(local_index, batch)

    def _deliver_client_event(self, global_index: int, event: ClientEvent) -> None:
        # The region runs shard + region-directory bookkeeping, then its
        # listener chain invokes ``_track_global_client_event`` below --
        # all synchronously inside this one delivery event, so the global
        # tracking happens at exactly the times a single-region run's would.
        region_index, local_index = divmod(global_index, self.shards_per_region)
        self.regions[region_index]._deliver_client_event(local_index, event)

    def _track_global_client_event(self, event: ClientEvent) -> None:
        track_client_event(self, event)

    def receive_client_event(self, event: ClientEvent) -> None:
        """Direct (bus-bypassing) delivery, for tests and synthetic drivers --
        mirrors ``GNFManager.receive_client_event`` semantics."""
        self._deliver_client_event(self._global_shard_index(event.station_name), event)

    def add_client_event_listener(self, listener: ClientEventListener) -> None:
        self._client_event_listeners.append(listener)

    # -------------------------------------------------------------- handoff

    def assignment_station_changed(self, assignment: Assignment, old_station: str) -> None:
        """Roaming hook: same-region moves delegate to the region (which
        handles its own cross-shard handoffs); a region-boundary move is the
        explicit release/adopt handoff one tier up."""
        assignment_id = assignment.assignment_id
        source_index = self._assignment_region.get(assignment_id)
        if source_index is None:
            return
        target_index = self.region_map.shard_for(assignment.station_name)
        if target_index == source_index:
            self.regions[source_index].assignment_station_changed(assignment, old_station)
            return
        schedule_active = self.regions[source_index].release_assignment(assignment_id)
        self.regions[target_index].adopt_assignment(assignment, schedule_active=schedule_active)
        self._assignment_region[assignment_id] = target_index
        self.handoffs.append(
            RegionHandoff(
                assignment_id=assignment_id,
                client_ip=assignment.client_ip,
                from_region=source_index,
                to_region=target_index,
                from_station=old_station,
                to_station=assignment.station_name,
                time=self.simulator.now,
                schedule_active=schedule_active,
            )
        )

    # ------------------------------------------------------- state streaming

    def _assignment_state_changed(
        self, assignment: Assignment, old_state: AssignmentState, new_state: AssignmentState
    ) -> None:
        counters = self.telemetry.counters
        if old_state is AssignmentState.ACTIVE:
            counters.add("active_assignments", -1)
            counters.add("enabled_nfs", -len(assignment.chain))
        if new_state is AssignmentState.ACTIVE:
            counters.add("active_assignments", 1)
            counters.add("enabled_nfs", len(assignment.chain))

    # ------------------------------------------------------ bundle upgrades

    def find_assignment(self, assignment_id: str) -> Optional[Assignment]:
        """Non-raising lookup against the federation's global index."""
        return self.assignments.get(assignment_id)

    def _upgrade_region(self, assignment_id: str) -> Optional[ShardedManager]:
        region_index = self._assignment_region.get(assignment_id)
        return None if region_index is None else self.regions[region_index]

    def stage_chain_upgrade(self, assignment_id: str, new_chain: ServiceChain, on_complete) -> None:
        """Route the staging to whichever region (and shard) owns it."""
        region = self._upgrade_region(assignment_id)
        if region is None:
            self.simulator.schedule(0.0, on_complete, False, "assignment not owned by any region")
            return
        region.stage_chain_upgrade(assignment_id, new_chain, on_complete)

    def suspend_chain_upgrade(self, assignment_id: str, on_suspended) -> None:
        region = self._upgrade_region(assignment_id)
        if region is not None:
            region.suspend_chain_upgrade(assignment_id, on_suspended)

    def cutover_chain_upgrade(self, assignment_id: str, new_chain: ServiceChain, final_states, on_done) -> None:
        region = self._upgrade_region(assignment_id)
        if region is None:
            self.simulator.schedule(0.0, on_done, False, "assignment not owned by any region")
            return
        region.cutover_chain_upgrade(assignment_id, new_chain, final_states, on_done)

    def abort_chain_upgrade(self, assignment_id: str) -> None:
        region = self._upgrade_region(assignment_id)
        if region is not None:
            region.abort_chain_upgrade(assignment_id)

    # -------------------------------------------------------------- queries

    def assignments_for_client(self, client_ip: str) -> List[Assignment]:
        return [a for a in self.assignments.values() if a.client_ip == client_ip]

    def station_views(self, client_station: Optional[str] = None) -> List[StationView]:
        """Placement candidates for **every** station, across all regions.

        Regions cover contiguous, ordered station bands, so concatenating
        them in region order preserves the global station order a single
        Manager would present -- placement tie-breaks stay identical."""
        views: List[StationView] = []
        for region in self.regions:
            views.extend(region.station_views(client_station))
        return views

    def connected_client_ips(self) -> List[str]:
        """The global directory's view of currently connected clients."""
        return sorted(self.client_locations)

    def station_provenance(self) -> Dict[str, str]:
        """Station -> ``region-r/shard-s`` labels for digest diffs."""
        provenance: Dict[str, str] = {}
        for region_index, region in enumerate(self.regions):
            for name, label in region.station_provenance().items():
                provenance[name] = f"region-{region_index}/{label}"
        return provenance

    def overview(self) -> Dict[str, object]:
        """The network-wide summary, served from the streaming rollups.

        O(regions) merges for the station lists, O(1) counter lookups for
        everything else -- no per-station or per-assignment scan.
        ``connected_clients`` is reported as a *count* at this tier (the
        full listing is a directory query, :meth:`connected_client_ips`).
        """
        now = self.simulator.now
        counters = self.telemetry.counters
        return {
            "time": now,
            "online_stations": self.telemetry.online_stations(now),
            "offline_stations": self.telemetry.offline_stations(now),
            "connected_clients": len(self.client_locations),
            "assignments": len(self.assignments),
            "active_assignments": counters.get("active_assignments"),
            "enabled_nfs": counters.get("enabled_nfs"),
            "hotspot_stations": self.telemetry.hotspots.stations(),
            "notifications": self.notifications.summary(),
            "heartbeats_processed": counters.get("heartbeats_processed"),
            "regions": self.region_count,
            "shards": self.total_shard_count,
            "cross_region_handoffs": len(self.handoffs),
            "cross_shard_handoffs": sum(len(region.handoffs) for region in self.regions),
        }

    def full_scan_overview(self) -> Dict[str, object]:
        """Brute-force recomputation of :meth:`overview` from per-station /
        per-assignment state (the pre-federation pull path).

        The rollup-equivalence tests assert this equals :meth:`overview`
        after every canned scenario, and benchmark E14 measures how much
        slower it is at fleet scale.
        """
        now = self.simulator.now
        online = sorted(
            name for region in self.regions for name in region.health.online_stations(now)
        )
        offline = sorted(
            name for region in self.regions for name in region.health.offline_stations(now)
        )
        active = [a for a in self.assignments.values() if a.state is AssignmentState.ACTIVE]
        hotspots = sorted(
            {name for region in self.regions for name in region.hotspots.hotspot_stations()}
        )
        return {
            "time": now,
            "online_stations": online,
            "offline_stations": offline,
            "connected_clients": len(self.connected_client_ips()),
            "assignments": len(self.assignments),
            "active_assignments": len(active),
            "enabled_nfs": sum(len(a.chain) for a in active),
            "hotspot_stations": hotspots,
            "notifications": self.notifications.summary(),
            "heartbeats_processed": sum(
                shard.heartbeats_processed for region in self.regions for shard in region.shards
            ),
            "regions": self.region_count,
            "shards": self.total_shard_count,
            "cross_region_handoffs": len(self.handoffs),
            "cross_shard_handoffs": sum(len(region.handoffs) for region in self.regions),
        }

    def control_plane_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-station control-channel statistics, merged across regions."""
        return {name: channel.stats() for name, channel in self.channels.items()}

    def region_stats(self) -> Dict[str, object]:
        """Per-region load, the global bus counters and the rollup tree."""
        per_region: Dict[str, object] = {}
        for index, region in enumerate(self.regions):
            per_region[f"region-{index}"] = {
                "stations": float(len(region.agents)),
                "assignments": float(len(region.assignments)),
                "heartbeats_processed": float(region.heartbeats_processed),
                "client_events_processed": float(region.client_events_processed),
                "cross_shard_handoffs": float(len(region.handoffs)),
            }
        return {
            "regions": per_region,
            "bus": self.bus.stats(),
            "cross_region_handoffs": float(len(self.handoffs)),
            "rollup": self.telemetry.stats(),
        }
