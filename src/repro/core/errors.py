"""Exception hierarchy for the GNF control plane."""

from __future__ import annotations


class GNFError(RuntimeError):
    """Base class for every GNF control-plane error."""


class UnknownAgentError(GNFError):
    """The Manager was asked about a station it has no Agent for."""


class UnknownClientError(GNFError):
    """The Manager was asked about a client it has never seen."""


class UnknownAssignmentError(GNFError):
    """Operation on an NF assignment that does not exist."""


class DeploymentError(GNFError):
    """An NF (or chain) could not be deployed on a station."""


class MigrationError(GNFError):
    """An NF migration could not be carried out."""


class CatalogError(GNFError):
    """The NF repository has no entry for the requested function type."""


class ScheduleError(GNFError):
    """An invalid time schedule was supplied."""
