"""Sharded control plane: many Managers behind one frontend.

The paper's Manager "keeps a connection with all the Agents in the network".
A single :class:`~repro.core.manager.GNFManager` does exactly that -- which
also makes it the scalability wall on the road to millions of clients: every
heartbeat, client (dis)connection and NF notification crosses the control
plane as its own simulator event and is processed serially by one object.

This module partitions that control plane:

* :class:`StationShardMap` -- consistent station->shard routing.  Stations
  are split into ``shard_count`` *contiguous bands* by station index
  (``station-1 .. station-k`` to shard 0, the next band to shard 1, ...), so
  geographically adjacent stations -- the ones a roaming client moves
  between most often -- usually share a shard and cross-shard handoffs stay
  rare.
* :class:`ControlBus` -- a coalescing agent->Manager transport.  Messages
  are queued per delivery tick and flushed under **one** simulator event per
  tick instead of one event per message; heartbeats and NF notifications are
  additionally grouped per shard inside the tick and handed to the shard's
  batch entry points (``receive_heartbeat_batch`` /
  ``receive_notification_batch``).  Delivery *times* are exactly what a
  per-message :class:`~repro.core.api.ControlChannel` would produce, so a
  scenario replays to the identical telemetry digest with sharding on or
  off -- only the event count (an implementation detail) changes.
* :class:`ShardedManager` -- the frontend.  It owns N region shards (each a
  plain ``GNFManager`` restricted to its band of stations), routes the
  attach/detach API by placement result, keeps the *global* client location
  directory and assignment index, and drives roaming network-wide.  When a
  migration lands a chain on a station owned by a different shard, the
  frontend moves the assignment between shards through an explicit
  :class:`ShardHandoff` message so shard-local state (assignment tables,
  scheduler tracking) always lives in exactly one place.

``ShardedManager`` is intentionally a drop-in for ``GNFManager``: the UI,
the roaming coordinator, the fault injector and the scenario telemetry all
keep working against the aggregate views (``overview``, ``station_views``,
``health``, ``hotspots``, ``scheduler``, ``control_plane_stats``).
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.agent import GNFAgent
from repro.core.api import AgentHeartbeat, ClientEvent, ControlChannel, NFNotificationMessage
from repro.core.chain import ServiceChain
from repro.core.errors import UnknownAgentError, UnknownAssignmentError, UnknownClientError
from repro.core.manager import (
    Assignment,
    AssignmentState,
    ClientEventListener,
    GNFManager,
    dispatch_remote_segments,
    make_assignment,
    teardown_remote_segments,
    track_client_event,
)
from repro.core.notifications import NotificationCenter
from repro.core.placement import (
    ClosestAgentPlacement,
    PlacementDecision,
    PlacementEngine,
    PlacementStrategy,
    StationView,
)
from repro.core.monitoring import Hotspot
from repro.core.policy import TrafficSelector
from repro.core.repository import NFRepository
from repro.core.scheduler import TimeSchedule
from repro.netem.simulator import Simulator
from repro.netem.topology import EdgeTopology
from repro.telemetry.rollup import RegionTelemetry, RollupCounters

_STATION_INDEX = re.compile(r"(\d+)$")


class StationShardMap:
    """Consistent station -> shard routing over contiguous index bands.

    With ``station_count`` stations and ``shard_count`` shards, station ``i``
    (1-based, parsed from the trailing integer of the station name) lands in
    shard ``(i - 1) * shard_count // station_count`` -- contiguous, balanced
    bands.  Station names without a trailing index fall back to a stable
    CRC32 hash, so arbitrary names still route consistently (just without
    the adjacency guarantee).
    """

    def __init__(self, station_count: int, shard_count: int, first_index: int = 1) -> None:
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        if station_count < 1:
            raise ValueError(f"station_count must be >= 1, got {station_count}")
        self.station_count = station_count
        self.shard_count = shard_count
        #: First 1-based station index this map covers.  The default covers
        #: the whole network; a federation region's internal map covers only
        #: its band, e.g. ``first_index=5, station_count=4`` for stations
        #: 5..8 split across the region's local shards.
        self.first_index = first_index

    def shard_for(self, station_name: str) -> int:
        """The shard index owning ``station_name``."""
        match = _STATION_INDEX.search(station_name)
        if match is not None:
            offset = int(match.group(1)) - self.first_index
            if 0 <= offset < self.station_count:
                return offset * self.shard_count // self.station_count
        return zlib.crc32(station_name.encode("utf-8")) % self.shard_count

    def band(self, shard_index: int) -> Tuple[int, int]:
        """The 1-based, inclusive station index range ``shard_index`` owns."""
        if not 0 <= shard_index < self.shard_count:
            raise IndexError(f"shard index {shard_index} out of range")
        lo = next(
            (i for i in range(1, self.station_count + 1) if (i - 1) * self.shard_count // self.station_count == shard_index),
            0,
        )
        hi = max(
            (i for i in range(1, self.station_count + 1) if (i - 1) * self.shard_count // self.station_count == shard_index),
            default=-1,
        )
        base = self.first_index - 1
        return (lo + base if lo else 0, hi + base if hi != -1 else -1)


@dataclass
class ShardHandoff:
    """One cross-shard assignment migration, as the frontend recorded it.

    Produced when a roaming migration moves a client's chain onto a station
    owned by a different shard: the source shard releases the assignment
    (dropping it from its table and scheduler), the target shard adopts it,
    and this message is the durable record of the transfer.
    """

    assignment_id: str
    client_ip: str
    from_shard: int
    to_shard: int
    from_station: str
    to_station: str
    time: float
    #: Whether the assignment's schedule considered it active at handoff
    #: time -- carried across so the target shard's scheduler resumes from
    #: the same state instead of re-deriving (and double-counting) the
    #: transition.
    schedule_active: bool = True


class _PendingTick:
    """Everything queued on the bus for one delivery instant."""

    __slots__ = ("heartbeats", "notifications", "events")

    def __init__(self, shard_count: int) -> None:
        # Lazily-created per-shard batches for the order-insensitive kinds.
        self.heartbeats: List[Optional[List[AgentHeartbeat]]] = [None] * shard_count
        self.notifications: List[Optional[List[NFNotificationMessage]]] = [None] * shard_count
        # Client events keep global enqueue order: a disconnect at shard A
        # and the matching connect at shard B must be observed in the order
        # they were sent or roaming decisions change.
        self.events: List[Tuple[int, ClientEvent]] = []


class ControlBus:
    """Coalescing agent -> Manager transport for the sharded control plane.

    Each agent sink enqueues its message under the delivery time a plain
    :class:`ControlChannel` would have used (``now + latency``) and bumps the
    station channel's traffic accounting.  The first message for a given
    delivery time schedules **one** flush event; every later message for the
    same tick rides along for free.  At flush time heartbeats and NF
    notifications are delivered per shard through the batch entry points,
    client events one by one in enqueue order.
    """

    def __init__(self, simulator: Simulator, shard_count: int) -> None:
        self.simulator = simulator
        self.shard_count = shard_count
        self._pending: Dict[float, _PendingTick] = {}
        self._deliver_heartbeats: Optional[Callable[[int, List[AgentHeartbeat]], None]] = None
        self._deliver_notifications: Optional[Callable[[int, List[NFNotificationMessage]], None]] = None
        self._deliver_event: Optional[Callable[[int, ClientEvent], None]] = None
        self.messages_enqueued = 0
        self.flushes = 0
        self.largest_batch = 0

    def bind(
        self,
        heartbeats: Callable[[int, List[AgentHeartbeat]], None],
        notifications: Callable[[int, List[NFNotificationMessage]], None],
        event: Callable[[int, ClientEvent], None],
    ) -> None:
        """Attach the frontend's delivery callbacks (one-time wiring)."""
        self._deliver_heartbeats = heartbeats
        self._deliver_notifications = notifications
        self._deliver_event = event

    # ----------------------------------------------------------------- sinks

    def _tick_for(self, latency_s: float) -> _PendingTick:
        deliver_at = self.simulator.now + latency_s
        tick = self._pending.get(deliver_at)
        if tick is None:
            tick = self._pending[deliver_at] = _PendingTick(self.shard_count)
            self.simulator.schedule(latency_s, self._flush, deliver_at)
        return tick

    def _sink(
        self,
        append: Callable[[_PendingTick, object], None],
        latency_s: float,
        channel: Optional[ControlChannel],
    ) -> Callable[[object], None]:
        """Build a sender: enqueue into the delivery tick ``append`` selects,
        with the shared message/traffic accounting applied exactly once."""

        def sink(message: object) -> None:
            append(self._tick_for(latency_s), message)
            self.messages_enqueued += 1
            if channel is not None:
                channel.messages_delivered += 1
                channel.bytes_estimate += 512

        return sink

    def _per_shard_append(self, field: str, shard_index: int) -> Callable[[_PendingTick, object], None]:
        def append(tick: _PendingTick, message: object) -> None:
            batches = getattr(tick, field)
            batch = batches[shard_index]
            if batch is None:
                batch = batches[shard_index] = []
            batch.append(message)

        return append

    def heartbeat_sink(
        self, shard_index: int, latency_s: float, channel: Optional[ControlChannel] = None
    ) -> Callable[[AgentHeartbeat], None]:
        """A sender delivering one station's heartbeats through the bus."""
        return self._sink(self._per_shard_append("heartbeats", shard_index), latency_s, channel)

    def event_sink(
        self, shard_index: int, latency_s: float, channel: Optional[ControlChannel] = None
    ) -> Callable[[ClientEvent], None]:
        """A sender delivering one station's client events through the bus."""
        return self._sink(
            lambda tick, event: tick.events.append((shard_index, event)), latency_s, channel
        )

    def notification_sink(
        self, shard_index: int, latency_s: float, channel: Optional[ControlChannel] = None
    ) -> Callable[[NFNotificationMessage], None]:
        """A sender delivering one station's NF notifications through the bus."""
        return self._sink(self._per_shard_append("notifications", shard_index), latency_s, channel)

    # ----------------------------------------------------------------- flush

    def _flush(self, deliver_at: float) -> None:
        tick = self._pending.pop(deliver_at)
        self.flushes += 1
        deliver_heartbeats = self._deliver_heartbeats
        for shard_index, batch in enumerate(tick.heartbeats):
            if batch:
                if len(batch) > self.largest_batch:
                    self.largest_batch = len(batch)
                deliver_heartbeats(shard_index, batch)
        deliver_notifications = self._deliver_notifications
        for shard_index, batch in enumerate(tick.notifications):
            if batch:
                deliver_notifications(shard_index, batch)
        deliver_event = self._deliver_event
        for shard_index, event in tick.events:
            deliver_event(shard_index, event)

    def stats(self) -> Dict[str, float]:
        """Coalescing counters (surfaced by ``ShardedManager.shard_stats``)."""
        return {
            "messages_enqueued": float(self.messages_enqueued),
            "flushes": float(self.flushes),
            "largest_batch": float(self.largest_batch),
            "coalescing_ratio": (
                self.messages_enqueued / self.flushes if self.flushes else 0.0
            ),
        }


class _ShardedHealth:
    """Network-wide liveness view over the per-shard health monitors."""

    def __init__(self, shards: List[GNFManager]) -> None:
        self._shards = shards

    def online_stations(self, now: float) -> List[str]:
        return sorted(name for shard in self._shards for name in shard.health.online_stations(now))

    def offline_stations(self, now: float) -> List[str]:
        return sorted(name for shard in self._shards for name in shard.health.offline_stations(now))

    def is_online(self, station_name: str, now: float) -> bool:
        return any(shard.health.is_online(station_name, now) for shard in self._shards)

    def heartbeats_received(self, station_name: str) -> int:
        return sum(shard.health.heartbeats_received(station_name) for shard in self._shards)

    def __len__(self) -> int:
        return sum(len(shard.health) for shard in self._shards)


class _ShardedHotspots:
    """Network-wide hotspot view over the per-shard detectors."""

    def __init__(self, shards: List[GNFManager]) -> None:
        self._shards = shards

    @property
    def hotspots(self):
        found = [hotspot for shard in self._shards for hotspot in shard.hotspots.hotspots]
        found.sort(key=lambda hotspot: (hotspot.detected_at, hotspot.station_name))
        return found

    def hotspot_stations(self) -> List[str]:
        return sorted({name for shard in self._shards for name in shard.hotspots.hotspot_stations()})

    def recent_hotspots(self, since: float):
        return [hotspot for hotspot in self.hotspots if hotspot.detected_at >= since]


class _ShardSchedulerGroup:
    """Facade over the per-shard NF schedulers (start/stop/aggregate stats)."""

    def __init__(self, shards: List[GNFManager]) -> None:
        self._shards = shards

    @property
    def transitions(self) -> int:
        return sum(shard.scheduler.transitions for shard in self._shards)

    def tracked(self) -> List[str]:
        return sorted(name for shard in self._shards for name in shard.scheduler.tracked())

    def start(self) -> "_ShardSchedulerGroup":
        for shard in self._shards:
            shard.scheduler.start()
        return self

    def stop(self) -> None:
        for shard in self._shards:
            shard.scheduler.stop()


class ShardedManager:
    """A GNF control plane partitioned into N region shards.

    Drop-in for :class:`~repro.core.manager.GNFManager`: the same attach /
    detach / register / query API, but every station band is served by its
    own ``GNFManager`` shard and all agent->Manager traffic is coalesced
    through a :class:`ControlBus`.  The frontend keeps only the truly global
    state -- the client location directory, the assignment->shard index, the
    shared notification centre and the roaming hook -- and aggregates
    everything else on demand.

    With ``shard_count=1`` this still batches control traffic; construct a
    plain ``GNFManager`` instead if you want the unbatched historical
    behaviour (that is what ``GNFTestbed(shard_count=1)`` does).
    """

    def __init__(
        self,
        simulator: Simulator,
        shard_count: int,
        station_count: Optional[int] = None,
        repository: Optional[NFRepository] = None,
        topology: Optional[EdgeTopology] = None,
        placement: Optional[PlacementStrategy] = None,
        heartbeat_timeout_s: float = 10.0,
        placement_engine: Optional[PlacementEngine] = None,
        station_range: Optional[Tuple[int, int]] = None,
        notifications: Optional[NotificationCenter] = None,
        telemetry: Optional[RegionTelemetry] = None,
    ) -> None:
        self.simulator = simulator
        self.repository = repository or NFRepository.with_default_catalog()
        self.topology = topology
        # Global placement runs on the frontend: one engine scoring the
        # *network-wide* station view (admission control and commitment
        # tracking included), exactly like a single Manager's engine would.
        self.placement_engine = placement_engine or PlacementEngine(
            simulator, strategy=placement, repository=self.repository
        )
        self.placement_engine.bind(
            views=self.station_views,
            on_admit=self._deploy_queued_assignment,
            on_timeout=self._fail_queued_assignment,
            locate=lambda client_ip: self.client_locations.get(client_ip),
        )
        if station_range is not None:
            # A federation region: this manager owns only the 1-based station
            # index band [lo, hi], sharded locally.
            lo, hi = station_range
            self.shard_map = StationShardMap(
                station_count=max(1, hi - lo + 1), shard_count=shard_count, first_index=lo
            )
        else:
            if station_count is None:
                station_count = len(topology.stations) if topology is not None else shard_count
            self.shard_map = StationShardMap(
                station_count=max(1, station_count), shard_count=shard_count
            )
        # One notification centre shared by every shard: notifications are a
        # provider-global stream (the UI and the fault injector publish and
        # read it without caring which shard relayed the message).  A
        # federation passes its single global centre in.
        self.notifications = notifications if notifications is not None else NotificationCenter()
        # Streaming telemetry rollup node.  Standalone, this aggregates the
        # manager's own shards; under a FederatedManager the node is parented
        # to the global rollup, so every shard push lands there too.
        self.telemetry = telemetry if telemetry is not None else RegionTelemetry(
            "region", heartbeat_timeout_s=heartbeat_timeout_s
        )
        # Last cumulative cache totals pushed per station (rollup deltas).
        self._cache_rollup_last: Dict[str, Dict[str, int]] = {}
        # Who dispatches/tears down a split assignment's *remote* segments.
        # Standalone, this frontend holds channels to every station; as a
        # federation region it only sees its band, so the federation rebinds
        # this to itself after construction.
        self.remote_segment_owner = self
        self.shards: List[GNFManager] = []
        for _ in range(shard_count):
            # Shards get the trivial placement: the frontend already ran the
            # real (possibly load-aware) strategy over the *global* station
            # view and routes each attach with an explicit station.
            shard = GNFManager(
                simulator,
                repository=self.repository,
                topology=topology,
                placement=ClosestAgentPlacement(),
                heartbeat_timeout_s=heartbeat_timeout_s,
            )
            shard.notifications = self.notifications
            # Split embeddings may land segments outside the shard's band;
            # only the frontend holds channels to every station, so it
            # dispatches and tears down remote segments on behalf of shards.
            shard.remote_segment_dispatcher = self._dispatch_remote_segments
            shard.remote_segment_teardown = self._teardown_remote_segments
            # Stream hotspot sightings into the rollup at detection time.
            shard.hotspots.on_hotspot = self._observe_hotspot
            self.shards.append(shard)
        self.bus = ControlBus(simulator, shard_count)
        self.bus.bind(
            heartbeats=self._deliver_heartbeats,
            notifications=self._deliver_notifications,
            event=self._deliver_client_event,
        )
        self.agents: Dict[str, GNFAgent] = {}
        self.channels: Dict[str, ControlChannel] = {}
        self.assignments: Dict[str, Assignment] = {}
        self._assignment_shard: Dict[str, int] = {}
        self.client_locations: Dict[str, str] = {}
        self.client_names: Dict[str, str] = {}
        self.roaming = None  # set by RoamingCoordinator, exactly like GNFManager
        self._client_event_listeners: List[ClientEventListener] = []
        self.handoffs: List[ShardHandoff] = []
        self.health = _ShardedHealth(self.shards)
        self.hotspots = _ShardedHotspots(self.shards)
        self.scheduler = _ShardSchedulerGroup(self.shards)

    @property
    def placement(self) -> PlacementStrategy:
        """The frontend's global placement strategy (engine-delegated)."""
        return self.placement_engine.strategy

    @placement.setter
    def placement(self, strategy: PlacementStrategy) -> None:
        self.placement_engine.strategy = strategy

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def heartbeats_processed(self) -> int:
        return sum(shard.heartbeats_processed for shard in self.shards)

    @property
    def client_events_processed(self) -> int:
        return sum(shard.client_events_processed for shard in self.shards)

    @property
    def last_heartbeat(self) -> Dict[str, AgentHeartbeat]:
        merged: Dict[str, AgentHeartbeat] = {}
        for shard in self.shards:
            merged.update(shard.last_heartbeat)
        return merged

    def shard_of(self, station_name: str) -> GNFManager:
        """The shard instance owning ``station_name``."""
        return self.shards[self.shard_map.shard_for(station_name)]

    # --------------------------------------------------------- registration

    def register_agent(
        self,
        agent: GNFAgent,
        control_latency_s: Optional[float] = None,
        sink_factory=None,
    ) -> ControlChannel:
        """Connect an Agent to its owning shard, with bus-coalesced senders.

        ``sink_factory`` overrides the sender wiring: a FederatedManager
        registers agents through its regions but routes their traffic over
        the *federation* bus (one globally-ordered bus keeps cross-region
        client events in the same order a single-region run would see).
        """
        station_name = agent.station.name
        shard_index = self.shard_map.shard_for(station_name)
        shard = self.shards[shard_index]

        if sink_factory is None:

            def sink_factory(channel: ControlChannel):
                latency = channel.latency_s
                return (
                    self.bus.heartbeat_sink(shard_index, latency, channel),
                    self.bus.event_sink(shard_index, latency, channel),
                    self.bus.notification_sink(shard_index, latency, channel),
                )

        channel = shard.register_agent(agent, control_latency_s, sink_factory=sink_factory)
        self.agents[station_name] = agent
        self.channels[station_name] = channel
        self.telemetry.health.record(station_name, self.simulator.now)
        return channel

    def agent(self, station_name: str) -> GNFAgent:
        try:
            return self.agents[station_name]
        except KeyError as exc:
            raise UnknownAgentError(station_name) from exc

    def start(self) -> "ShardedManager":
        """Start every shard's schedule evaluator."""
        for shard in self.shards:
            shard.start()
        return self

    # ------------------------------------------------------------ attach API

    def attach_chain(
        self,
        client_ip: str,
        chain: ServiceChain,
        selector: Optional[TrafficSelector] = None,
        schedule: Optional[TimeSchedule] = None,
        station_name: Optional[str] = None,
    ) -> Assignment:
        """Place a chain using the global station view, then route the attach
        to the shard owning the chosen station.

        Admission control (when enabled on the frontend's engine) runs here,
        against the network-wide view: a queued assignment is parked on the
        frontend and handed to the owning shard only once it is admitted.
        """
        client_station = station_name or self.client_locations.get(client_ip)
        if client_station is None:
            raise UnknownClientError(
                f"client {client_ip!r} has no known location; pass station_name explicitly"
            )
        decision = self.placement_engine.place(
            client_station, self.station_views(client_station), chain, client_ip=client_ip
        )
        if decision.admitted:
            # Build the assignment here (not via shard.attach_chain): the
            # frontend already ran global placement, and the decision's
            # segment map must travel with the assignment -- a shard
            # re-placing would see only its own band.
            shard_index = self.shard_map.shard_for(decision.station_name)
            assignment = make_assignment(
                self.simulator.now, client_ip, chain, selector, schedule, decision.station_name
            )
            assignment.apply_segments(decision.segments)
            self.assignments[assignment.assignment_id] = assignment
            self._assignment_shard[assignment.assignment_id] = shard_index
            self.shards[shard_index].accept_placed_assignment(assignment)
            return assignment
        assignment = make_assignment(
            self.simulator.now, client_ip, chain, selector, schedule, decision.station_name
        )
        self.assignments[assignment.assignment_id] = assignment
        if decision.queued:
            self.placement_engine.enqueue(assignment, client_station, chain)
        else:
            assignment.state = AssignmentState.FAILED
            assignment.failure_reason = decision.reason
        return assignment

    def _deploy_queued_assignment(self, assignment: Assignment, decision: PlacementDecision) -> None:
        """Engine callback: hand a finally-admitted assignment to its shard."""
        if assignment.state is not AssignmentState.PENDING:
            return  # detached (or failed) while waiting in the queue
        assignment.station_name = decision.station_name
        assignment.station_history[-1] = decision.station_name
        assignment.apply_segments(decision.segments)
        shard_index = self.shard_map.shard_for(decision.station_name)
        self._assignment_shard[assignment.assignment_id] = shard_index
        self.shards[shard_index].accept_placed_assignment(assignment)

    def _dispatch_remote_segments(self, assignment: Assignment) -> None:
        """Deploy a split assignment's remote segments network-wide.

        Invoked by the owning shard's ``_dispatch_deployment`` hook: the
        shard holds channels only for its own band.  Completion reports are
        routed back into that shard's assignment state machine.
        """
        shard = self.shards[self._assignment_shard[assignment.assignment_id]]
        dispatch_remote_segments(self.remote_segment_owner, assignment, shard._deployment_finished)

    def _teardown_remote_segments(self, assignment: Assignment) -> None:
        """Tear down remote segments with the frontend's global channels."""
        teardown_remote_segments(self.remote_segment_owner, assignment)

    def _fail_queued_assignment(self, assignment: Assignment, reason: str) -> None:
        """Engine callback: a queued placement timed out on the frontend."""
        if assignment.state is AssignmentState.PENDING:
            assignment.state = AssignmentState.FAILED
            assignment.failure_reason = reason

    def attach_nf(
        self,
        client_ip: str,
        nf_type: str,
        config: Optional[Dict[str, object]] = None,
        selector: Optional[TrafficSelector] = None,
        schedule: Optional[TimeSchedule] = None,
        station_name: Optional[str] = None,
    ) -> Assignment:
        """Attach a single NF (convenience wrapper, mirrors GNFManager)."""
        return self.attach_chain(
            client_ip,
            ServiceChain.single(nf_type, config=config),
            selector=selector,
            schedule=schedule,
            station_name=station_name,
        )

    def detach(self, assignment_id: str) -> Assignment:
        """Tear down an assignment on whichever shard currently owns it."""
        shard_index = self._assignment_shard.get(assignment_id)
        if shard_index is None:
            # Never handed to a shard: still queued for admission on the
            # frontend (or already failed there).  Nothing was deployed.
            assignment = self.assignments.get(assignment_id)
            if assignment is None:
                raise UnknownAssignmentError(assignment_id)
            self.placement_engine.cancel(assignment_id)
            assignment.state = AssignmentState.REMOVED
            if self.roaming is not None:
                self.roaming.assignment_released(assignment_id)
            return assignment
        assignment = self.shards[shard_index].detach(assignment_id)
        # Shards have no roaming hook (roaming is frontend-global), so the
        # frontend must release the coordinator's staged state itself.
        if self.roaming is not None:
            self.roaming.assignment_released(assignment_id)
        return assignment

    # ---------------------------------------------------------- bus delivery

    #: Heartbeat cache totals streamed into the rollup tree.  The heartbeat
    #: carries cumulative per-station values; the frontend diffs them against
    #: the last push so the rollup counters stay additive integers.
    _CACHE_ROLLUP_KEYS = (
        "hits",
        "misses",
        "evictions",
        "bytes_served_from_cache",
        "backhaul_bytes_saved",
    )

    def _push_cache_rollup(self, node: RollupCounters, heartbeat: AgentHeartbeat) -> None:
        if not heartbeat.cache:
            return
        station_last = self._cache_rollup_last.setdefault(heartbeat.station_name, {})
        for key in self._CACHE_ROLLUP_KEYS:
            total = int(heartbeat.cache.get(key, 0.0))
            delta = total - station_last.get(key, 0)
            if delta:
                node.add(f"cache_{key}", delta)
                station_last[key] = total

    def _deliver_heartbeats(self, shard_index: int, batch: List[AgentHeartbeat]) -> None:
        # Push the streaming rollup deltas first (plain synchronous calls;
        # no simulator events, so delivery order/time is unchanged), then
        # hand the batch to the shard's scan-era entry point.
        node = self.telemetry.shard_node(shard_index)
        node.add("heartbeats_processed", len(batch))
        health = self.telemetry.health
        now = self.simulator.now
        for heartbeat in batch:
            health.record(heartbeat.station_name, now)
            self._push_cache_rollup(node, heartbeat)
        self.shards[shard_index].receive_heartbeat_batch(batch)

    def _deliver_notifications(self, shard_index: int, batch: List[NFNotificationMessage]) -> None:
        self.telemetry.shard_node(shard_index).add("notifications_processed", len(batch))
        self.shards[shard_index].receive_notification_batch(batch)

    def _deliver_client_event(self, shard_index: int, event: ClientEvent) -> None:
        # Shard-local bookkeeping first (counters, shard client directory;
        # the shard has no roaming hook), then the same shared tracking a
        # single Manager runs -- here against the global directory, the
        # global assignment index and the network-wide roaming coordinator.
        self.telemetry.shard_node(shard_index).add("client_events_processed", 1)
        self.shards[shard_index].receive_client_event(event)
        track_client_event(self, event)

    def _observe_hotspot(self, hotspot: Hotspot) -> None:
        self.telemetry.hotspots.record(hotspot.station_name)

    def add_client_event_listener(self, listener: ClientEventListener) -> None:
        self._client_event_listeners.append(listener)

    # -------------------------------------------------------------- handoff

    def assignment_station_changed(self, assignment: Assignment, old_station: str) -> None:
        """Roaming hook: move the assignment between shards if its new home
        station is owned by a different one (the explicit handoff)."""
        assignment_id = assignment.assignment_id
        source_index = self._assignment_shard.get(assignment_id)
        if source_index is None:
            return
        target_index = self.shard_map.shard_for(assignment.station_name)
        if target_index == source_index:
            return
        schedule_active = self.shards[source_index].release_assignment(assignment_id)
        self.shards[target_index].adopt_assignment(assignment, schedule_active=schedule_active)
        self._assignment_shard[assignment_id] = target_index
        self.handoffs.append(
            ShardHandoff(
                assignment_id=assignment_id,
                client_ip=assignment.client_ip,
                from_shard=source_index,
                to_shard=target_index,
                from_station=old_station,
                to_station=assignment.station_name,
                time=self.simulator.now,
                schedule_active=schedule_active,
            )
        )

    # ------------------------------------------------- region-level handoff

    def release_assignment(self, assignment_id: str) -> bool:
        """Drop an assignment from this manager entirely (cross-*region*
        handoff source side): the owning shard releases it from its table and
        scheduler, and the frontend indexes forget it.  Returns whether the
        schedule considered it active, exactly like the shard primitive."""
        shard_index = self._assignment_shard.pop(assignment_id)
        self.assignments.pop(assignment_id, None)
        return self.shards[shard_index].release_assignment(assignment_id)

    def adopt_assignment(self, assignment: Assignment, schedule_active: bool = True) -> None:
        """Adopt a released assignment (cross-*region* handoff target side):
        route it to the shard owning its new home station and resume its
        schedule tracking from the carried state."""
        shard_index = self.shard_map.shard_for(assignment.station_name)
        self.assignments[assignment.assignment_id] = assignment
        self._assignment_shard[assignment.assignment_id] = shard_index
        self.shards[shard_index].adopt_assignment(assignment, schedule_active=schedule_active)

    def accept_placed_assignment(self, assignment: Assignment) -> None:
        """Accept an assignment the federation frontend already placed
        globally: index it here and hand it to the owning shard's deployment
        state machine (mirrors the shard-level primitive one tier up)."""
        shard_index = self.shard_map.shard_for(assignment.station_name)
        self.assignments[assignment.assignment_id] = assignment
        self._assignment_shard[assignment.assignment_id] = shard_index
        self.shards[shard_index].accept_placed_assignment(assignment)

    # ------------------------------------------------------ bundle upgrades

    def find_assignment(self, assignment_id: str) -> Optional[Assignment]:
        """Non-raising lookup against the frontend's global index."""
        return self.assignments.get(assignment_id)

    def _upgrade_shard(self, assignment_id: str) -> Optional[GNFManager]:
        shard_index = self._assignment_shard.get(assignment_id)
        return None if shard_index is None else self.shards[shard_index]

    def stage_chain_upgrade(self, assignment_id: str, new_chain: ServiceChain, on_complete) -> None:
        """Route the staging to whichever shard owns the assignment."""
        shard = self._upgrade_shard(assignment_id)
        if shard is None:
            self.simulator.schedule(0.0, on_complete, False, "assignment not owned by any shard")
            return
        shard.stage_chain_upgrade(assignment_id, new_chain, on_complete)

    def suspend_chain_upgrade(self, assignment_id: str, on_suspended) -> None:
        shard = self._upgrade_shard(assignment_id)
        if shard is not None:
            shard.suspend_chain_upgrade(assignment_id, on_suspended)

    def cutover_chain_upgrade(self, assignment_id: str, new_chain: ServiceChain, final_states, on_done) -> None:
        """Cut over on the owning shard (its scheduler holds the activation
        state the replacement must inherit)."""
        shard = self._upgrade_shard(assignment_id)
        if shard is None:
            self.simulator.schedule(0.0, on_done, False, "assignment not owned by any shard")
            return
        shard.cutover_chain_upgrade(assignment_id, new_chain, final_states, on_done)

    def abort_chain_upgrade(self, assignment_id: str) -> None:
        shard = self._upgrade_shard(assignment_id)
        if shard is not None:
            shard.abort_chain_upgrade(assignment_id)

    # -------------------------------------------------------------- queries

    def assignments_for_client(self, client_ip: str) -> List[Assignment]:
        return [a for a in self.assignments.values() if a.client_ip == client_ip]

    def station_provenance(self) -> Dict[str, str]:
        """Station -> ``shard-i`` labels (digest diffs use these to point a
        mismatch at the owning shard)."""
        return {name: f"shard-{self.shard_map.shard_for(name)}" for name in self.agents}

    def station_views(self, client_station: Optional[str] = None) -> List[StationView]:
        """Placement candidates for **every** station, across all shards."""
        views: List[StationView] = []
        for shard in self.shards:
            views.extend(shard.station_views(client_station))
        return views

    def overview(self) -> Dict[str, object]:
        """The network-wide summary, aggregated over every shard."""
        now = self.simulator.now
        active_assignments = [
            a for a in self.assignments.values() if a.state is AssignmentState.ACTIVE
        ]
        return {
            "time": now,
            "online_stations": self.health.online_stations(now),
            "offline_stations": self.health.offline_stations(now),
            "connected_clients": sorted(self.client_locations),
            "assignments": len(self.assignments),
            "active_assignments": len(active_assignments),
            "enabled_nfs": sum(len(a.chain) for a in active_assignments),
            "hotspot_stations": self.hotspots.hotspot_stations(),
            "notifications": self.notifications.summary(),
            "heartbeats_processed": self.heartbeats_processed,
            "shards": self.shard_count,
            "cross_shard_handoffs": len(self.handoffs),
        }

    def control_plane_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-station control-channel statistics, merged across shards
        (same shape as ``GNFManager.control_plane_stats``)."""
        return {name: channel.stats() for name, channel in self.channels.items()}

    def shard_stats(self) -> Dict[str, object]:
        """Per-shard load plus bus coalescing counters (benchmark E7)."""
        per_shard: Dict[str, Dict[str, float]] = {}
        for index, shard in enumerate(self.shards):
            per_shard[f"shard-{index}"] = {
                "stations": float(len(shard.agents)),
                "assignments": float(len(shard.assignments)),
                "heartbeats_processed": float(shard.heartbeats_processed),
                "client_events_processed": float(shard.client_events_processed),
                "scheduler_transitions": float(shard.scheduler.transitions),
            }
        return {
            "shards": per_shard,
            "bus": self.bus.stats(),
            "cross_shard_handoffs": float(len(self.handoffs)),
            "rollup": self.telemetry.stats(),
        }
