"""One-call assembly of a complete emulated GNF deployment.

The demo setup in Fig. 2 is: two wireless networks (each a home router
hosting GNF), a provider network behind them, smartphones roaming between
the networks, and the Manager + UI watching everything.  ``GNFTestbed``
builds exactly that -- topology, cells, clients, Agents, Manager, roaming
coordinator and dashboard -- so examples, tests and benchmarks can focus on
the scenario instead of the wiring.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.agent import GNFAgent
from repro.core.bundles import BundleUpgradeOrchestrator, default_catalogue
from repro.core.federation import FederatedManager
from repro.core.manager import GNFManager
from repro.core.placement import (
    AdmissionPolicy,
    NFAutoscaler,
    PlacementEngine,
    PlacementStrategy,
    make_strategy,
)
from repro.core.repository import NFRepository
from repro.core.roaming import RoamingCoordinator
from repro.core.seeds import derive_seed
from repro.core.sharding import ShardedManager
from repro.core.ui import GNFDashboard
from repro.netem.fluid import SIMULATION_MODES, FluidFlow, FluidPath, HybridScheduler
from repro.netem.link import Link
from repro.netem.simulator import Simulator
from repro.netem.topology import EdgeTopology, StationProfile, TopologyConfig
from repro.wireless.cell import Cell
from repro.wireless.client import MobileClient
from repro.wireless.handover import HandoverManager
from repro.wireless.radio import RadioEnvironment


@dataclass
class TestbedConfig:
    """Knobs for the emulated deployment."""

    # Not a pytest test class, despite the name.
    __test__ = False

    #: Master seed for the whole run.  Every RNG in the deployment (mobility,
    #: workload generators, handover jitter, fault schedules) derives its own
    #: child seed from this one via :func:`repro.core.seeds.derive_seed`, so
    #: two testbeds built from the same config replay identically and varying
    #: this single knob varies every random decision at once.
    seed: int = 0
    station_count: int = 2
    cells_per_station: int = 1
    station_profile: StationProfile = field(default_factory=StationProfile.router_class)
    station_spacing_m: float = 80.0
    cell_tx_power_dbm: float = 20.0
    uplink_bandwidth_bps: float = 100e6
    uplink_delay_s: float = 0.005
    core_delay_s: float = 0.010
    server_count: int = 1
    dns_zone: Dict[str, List[str]] = field(default_factory=lambda: {"cdn.example.com": ["203.0.113.10"]})
    migration_strategy: str = "cold"
    #: Chunk size the migration engine uses when it moves checkpoint bytes
    #: over the backhaul links (one chunk = one packet on the wire).
    migration_chunk_bytes: int = 65536
    #: Iterative pre-copy knobs: maximum dirty-delta rounds before the
    #: freeze, the downtime the final copy must fit into, and how much of
    #: the state is re-dirtied between rounds.
    precopy_max_rounds: int = 4
    precopy_downtime_target_s: float = 0.05
    precopy_dirty_fraction: float = 0.25
    heartbeat_interval_s: float = 2.0
    scan_interval_s: float = 0.5
    handover_delay_s: float = 0.05
    handover_hysteresis_db: float = 4.0
    #: Uniform +/- jitter applied to every handover scan interval (models
    #: unsynchronised Wi-Fi scan timers).  0 keeps scans strictly periodic.
    handover_scan_jitter_s: float = 0.0
    #: Placement strategy *object* (takes precedence when set); most callers
    #: use the ``placement_strategy`` name knob instead.
    placement: Optional[PlacementStrategy] = None
    #: Placement strategy by registry name (``closest-agent`` --- the paper's
    #: behaviour and the historical default --- ``least-loaded``,
    #: ``latency-weighted``, ``bin-packing``, ``load-aware``,
    #: ``latency-aware``, ``embedding``).  See :mod:`repro.core.placement`.
    placement_strategy: str = "closest-agent"
    #: Manager-side admission control: when on, deployments aimed at a
    #: saturated station are queued (retried as capacity frees, timed out
    #: after ``admission_queue_timeout_s``) instead of dispatched to fail at
    #: the runtime.  Off by default -- the historical behaviour.
    admission_control: bool = False
    admission_max_utilization: float = 0.85
    admission_queue_timeout_s: float = 30.0
    #: Utilization-driven autoscaler: scales hot chains horizontally with
    #: load-balancer-fronted replicas on nearby stations and rebalances via
    #: the migration engine.  Off by default.
    autoscale_enabled: bool = False
    autoscale_interval_s: float = 5.0
    autoscale_up_threshold: float = 0.8
    autoscale_down_threshold: float = 0.4
    autoscale_max_replicas: int = 2
    #: Flow-cached fast path on the station switches (disable to measure the
    #: pure slow-path baseline, e.g. in benchmark E6).
    fastpath_enabled: bool = True
    #: Number of control-plane shards.  1 (the default) builds the single
    #: historical :class:`~repro.core.manager.GNFManager`; >1 builds a
    #: :class:`~repro.core.sharding.ShardedManager` that partitions the
    #: stations into contiguous bands and coalesces agent->Manager traffic
    #: through a ControlBus.  Scenario digests are identical either way.
    shard_count: int = 1
    #: Number of federation regions.  1 (the default) keeps the single
    #: region-level control plane above; >1 builds a
    #: :class:`~repro.core.federation.FederatedManager` owning that many
    #: regions, each a ShardedManager with ``shard_count`` *local* shards
    #: over its contiguous station band, with streaming telemetry rollups
    #: and cross-region roaming handoffs.  Scenario digests are identical
    #: across region counts.
    region_count: int = 1
    #: ``packet`` (the historical pure packet-level engine) or ``hybrid``
    #: (bulk flows become fluid rate processes solved per-link, demoted to
    #: packets inside fidelity islands -- see :mod:`repro.netem.fluid`).
    #: Non-bulk workloads are packet-level in both modes, so scenarios
    #: without bulk traffic digest identically across this knob.
    simulation_mode: str = "packet"
    #: Fluid solver epoch length in simulated seconds (hybrid mode only).
    fluid_epoch_s: float = 0.25


class GNFTestbed:
    """A fully wired emulated edge deployment running GNF.

    Construction assembles everything Fig. 2 shows: the edge topology
    (stations, gateway, core servers), one cell and one
    :class:`~repro.core.agent.GNFAgent` per station, the central Manager --
    a single :class:`~repro.core.manager.GNFManager` by default, or a
    :class:`~repro.core.sharding.ShardedManager` when
    ``config.shard_count > 1`` -- the roaming coordinator, the handover
    manager and the operator dashboard.  :meth:`start` begins client
    association scanning; :meth:`run` advances the shared simulator;
    :meth:`stop` halts every periodic activity so the event queue drains.
    """

    def __init__(self, config: Optional[TestbedConfig] = None) -> None:
        self.config = config or TestbedConfig()
        self.simulator = Simulator()
        self.topology = EdgeTopology(
            self.simulator,
            TopologyConfig(
                station_count=self.config.station_count,
                station_profile=self.config.station_profile,
                station_spacing_m=self.config.station_spacing_m,
                uplink_bandwidth_bps=self.config.uplink_bandwidth_bps,
                uplink_delay_s=self.config.uplink_delay_s,
                core_delay_s=self.config.core_delay_s,
                server_count=self.config.server_count,
                dns_zone=dict(self.config.dns_zone),
                fastpath_enabled=self.config.fastpath_enabled,
            ),
        )
        self.repository = NFRepository.with_default_catalog()
        if self.config.shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {self.config.shard_count}")
        if self.config.region_count < 1:
            raise ValueError(f"region_count must be >= 1, got {self.config.region_count}")
        if self.config.region_count > self.config.station_count:
            raise ValueError(
                f"region_count ({self.config.region_count}) cannot exceed "
                f"station_count ({self.config.station_count})"
            )
        strategy = self.config.placement or make_strategy(self.config.placement_strategy)
        self.placement_engine = PlacementEngine(
            self.simulator,
            strategy=strategy,
            repository=self.repository,
            admission=AdmissionPolicy(
                enabled=self.config.admission_control,
                max_utilization=self.config.admission_max_utilization,
                queue_timeout_s=self.config.admission_queue_timeout_s,
            ),
            # Commitments only need to bridge the heartbeat blind window.
            pending_ttl_s=self.config.heartbeat_interval_s + 1.0,
        )
        if self.config.region_count > 1:
            # Federation tier: ``shard_count`` becomes shards *per region*.
            self.manager = FederatedManager(
                self.simulator,
                region_count=self.config.region_count,
                shards_per_region=self.config.shard_count,
                station_count=self.config.station_count,
                repository=self.repository,
                topology=self.topology,
                placement_engine=self.placement_engine,
            )
        elif self.config.shard_count > 1:
            self.manager = ShardedManager(
                self.simulator,
                shard_count=self.config.shard_count,
                station_count=self.config.station_count,
                repository=self.repository,
                topology=self.topology,
                placement_engine=self.placement_engine,
            )
        else:
            self.manager = GNFManager(
                self.simulator,
                repository=self.repository,
                topology=self.topology,
                placement_engine=self.placement_engine,
            )
        self.radio = RadioEnvironment()
        self.handover = HandoverManager(
            self.simulator,
            self.topology,
            radio_environment=self.radio,
            scan_interval_s=self.config.scan_interval_s,
            hysteresis_db=self.config.handover_hysteresis_db,
            handover_delay_s=self.config.handover_delay_s,
            scan_jitter_s=self.config.handover_scan_jitter_s,
            jitter_rng=random.Random(self.seed_for("handover", "scan-jitter")),
        )
        # Feed the embedding strategy the handover scan path's radio view so
        # SLO pricing can use per-client PHY rates and backhaul headroom.
        self.placement_engine.bind_radio(
            self.handover.station_link_rates,
            uplink_bandwidth_mbps=self.config.uplink_bandwidth_bps / 1e6,
        )
        self.roaming = RoamingCoordinator(
            self.simulator,
            self.manager,
            strategy=self.config.migration_strategy,
            chunk_bytes=self.config.migration_chunk_bytes,
            precopy_max_rounds=self.config.precopy_max_rounds,
            precopy_downtime_target_s=self.config.precopy_downtime_target_s,
            precopy_dirty_fraction=self.config.precopy_dirty_fraction,
        )
        self.autoscaler = NFAutoscaler(
            self.simulator,
            self.manager,
            roaming=self.roaming,
            interval_s=self.config.autoscale_interval_s,
            scale_up_threshold=self.config.autoscale_up_threshold,
            scale_down_threshold=self.config.autoscale_down_threshold,
            max_replicas_per_chain=self.config.autoscale_max_replicas,
        )
        self.upgrades = BundleUpgradeOrchestrator(
            self.simulator,
            self.manager,
            engine=self.roaming.engine,
            catalogue=default_catalogue(),
        )
        self.ui = GNFDashboard(self.manager)
        if self.config.simulation_mode not in SIMULATION_MODES:
            raise ValueError(
                f"unknown simulation_mode {self.config.simulation_mode!r}; "
                f"valid: {SIMULATION_MODES}"
            )
        self.hybrid = HybridScheduler(
            self.simulator,
            mode=self.config.simulation_mode,
            epoch_s=self.config.fluid_epoch_s,
        )
        self.hybrid.chain_predicate = self._flow_has_chain
        self.hybrid.migration_stations = (
            lambda: self.roaming.engine.transfers.active_transfer_stations()
        )
        self.hybrid.path_resolver = self._resolve_fluid_path
        self.hybrid.switch_for = self._switch_for
        self._server_core_links: Dict[str, Link] = {}
        self.agents: Dict[str, GNFAgent] = {}
        self.cells: Dict[str, Cell] = {}
        self.clients: Dict[str, MobileClient] = {}
        self._build_stations()
        if self.agents:
            # Price the runtime's per-container bookkeeping into placement's
            # memory estimates, so fit checks match what admission charges.
            self.placement_engine.nf_overhead_mb = next(
                iter(self.agents.values())
            ).runtime.per_container_overhead_mb
        self.manager.start()

    # ----------------------------------------------------------------- seeds

    def seed_for(self, *path: object) -> int:
        """Child seed for one component, derived from ``config.seed``.

        Use a stable label path (e.g. ``seed_for("mobility", client.name)``)
        so the same component gets the same seed on every replay while
        distinct components get independent streams.
        """
        return derive_seed(self.config.seed, *path)

    # ---------------------------------------------------------- hybrid wiring

    def _flow_has_chain(self, flow: FluidFlow) -> bool:
        """Fidelity island: the flow's client has a live NF chain attached."""
        client = flow.client
        if client is None:
            return False
        from repro.core.manager import AssignmentState

        for assignment in self.manager.assignments_for_client(client.ip):
            if assignment.state not in (AssignmentState.REMOVED, AssignmentState.FAILED):
                return True
        return False

    def _switch_for(self, station_name: str):
        station = self.topology.stations.get(station_name)
        return station.switch if station is not None else None

    def _server_core_link(self, server_ip: str) -> Optional[Link]:
        """The core-switch--server link carrying ``server_ip``'s traffic."""
        link = self._server_core_links.get(server_ip)
        if link is None:
            by_name = {candidate.name: candidate for candidate in self.topology.links}
            for name, server in self.topology.servers.items():
                candidate = by_name.get(f"{name}-core-link")
                if candidate is not None and server.ip is not None:
                    self._server_core_links[server.ip] = candidate
            link = self._server_core_links.get(server_ip)
        return link

    def _resolve_fluid_path(self, flow: FluidFlow) -> Optional[FluidPath]:
        """Shared links an upload from ``flow.client`` to ``flow.dst_ip`` crosses.

        Direction keys follow the attach order in
        :class:`~repro.netem.topology.EdgeTopology`: station->gateway and
        gateway->core are the links' ``a_to_b`` sides, core->server is the
        server link's ``b_to_a`` side.  Unroutable flows (client not
        associated anywhere) resolve to ``None`` and stay packet-level.
        """
        client = flow.client
        station_name = getattr(client, "current_station_name", None)
        if station_name is None:
            return None
        uplink = self.topology.uplink_links.get(station_name)
        if uplink is None:
            return None
        links: List[Tuple[object, str]] = [(uplink, "a_to_b")]
        for candidate in self.topology.links:
            if candidate.name == "gw-core-link":
                links.append((candidate, "a_to_b"))
                break
        server_link = self._server_core_link(flow.dst_ip)
        if server_link is not None:
            links.append((server_link, "b_to_a"))
        return FluidPath(station=station_name, links=links)

    # ----------------------------------------------------------------- build

    def _build_stations(self) -> None:
        for station_name, station in self.topology.stations.items():
            agent = GNFAgent(
                self.simulator,
                station,
                self.repository,
                pull_bandwidth_bps=self.config.uplink_bandwidth_bps,
                heartbeat_interval_s=self.config.heartbeat_interval_s,
            )
            if self.hybrid.hybrid_enabled:
                agent.collector.add_source(
                    "fluid",
                    lambda name=station_name: dict(self.hybrid._station_counters(name)),
                )
            self.agents[station_name] = agent
            self.manager.register_agent(agent)
            for cell_index in range(self.config.cells_per_station):
                self._add_cell(station_name, station.position, cell_index, agent)

    def _add_cell(
        self,
        station_name: str,
        station_position: Tuple[float, float],
        cell_index: int,
        agent: GNFAgent,
    ) -> Cell:
        cell_name = f"{station_name}-cell{cell_index + 1}"
        position = (station_position[0] + cell_index * 10.0, station_position[1])
        cell = Cell(
            self.simulator,
            name=cell_name,
            station_name=station_name,
            position=position,
            mac=self.topology.addresses.allocate_mac(),
            tx_power_dbm=self.config.cell_tx_power_dbm,
            radio_environment=self.radio,
        )
        self.topology.connect_cell(cell, station_name, cell.wired_interface)
        agent.watch_cell(cell)
        self.handover.add_cell(cell)
        self.cells[cell_name] = cell
        return cell

    # --------------------------------------------------------------- clients

    def add_client(self, name: Optional[str] = None, position: Tuple[float, float] = (0.0, 0.0)) -> MobileClient:
        """Create a mobile client at ``position`` (not yet associated)."""
        client_name = name or f"client-{len(self.clients) + 1}"
        client = MobileClient(
            self.simulator,
            name=client_name,
            ip=self.topology.addresses.allocate_ip("clients", owner=client_name),
            mac=self.topology.addresses.allocate_mac(),
            position=position,
        )
        self.clients[client_name] = client
        self.handover.add_client(client)
        return client

    def add_server(self, name: str, http_body_bytes: Optional[int] = None):
        """Add an extra application server in the core."""
        return self.topology.add_server(name, http_body_bytes=http_body_bytes)

    # --------------------------------------------------------------- running

    def start(self) -> "GNFTestbed":
        """Associate clients with their best cells and start periodic scanning."""
        self.handover.start()
        if self.config.autoscale_enabled:
            self.autoscaler.start()
        self.hybrid.start()
        return self

    def stop(self) -> None:
        """Stop every periodic activity owned by the testbed.

        After this call the only events left on the simulator queue are
        one-shot ones (in-flight packets, boots, migrations), so running the
        simulator to exhaustion terminates -- which is what scenario teardown
        relies on to assert a clean drain.
        """
        self.handover.stop()
        # Settle the fluid world's partial epoch and stop the solver task.
        self.hybrid.stop()
        # Tear down autoscaled replicas and stop the admission retry task so
        # neither subsystem keeps rescheduling itself (or leaks containers).
        self.autoscaler.shutdown()
        self.placement_engine.stop()
        # Stop walking rolling upgrades before the migration machinery goes
        # away underneath them.
        self.upgrades.shutdown()
        # Abandon in-flight state transfers and tear down speculative
        # replicas so no migration machinery keeps rescheduling itself (and
        # no captured state or replica outlives the run).
        self.roaming.shutdown()
        self.manager.scheduler.stop()
        for agent in self.agents.values():
            agent.stop()

    def run(self, duration_s: float) -> float:
        """Advance the simulation by ``duration_s`` seconds."""
        return self.simulator.run_for(duration_s)

    def run_until(self, time_s: float) -> float:
        """Advance the simulation up to absolute time ``time_s``."""
        return self.simulator.run(until=time_s)

    # --------------------------------------------------------------- queries

    @property
    def server_ip(self) -> str:
        """IP of the first core application server."""
        return self.topology.any_server_ip()

    def agent_for(self, station_name: str) -> GNFAgent:
        """The GNF Agent daemon running on ``station_name``."""
        return self.agents[station_name]

    def station_names(self) -> List[str]:
        """Sorted names of every station in the deployment."""
        return sorted(self.topology.stations)

    def client(self, name: str) -> MobileClient:
        """Look up a mobile client created via :meth:`add_client`."""
        return self.clients[name]
