"""Control-plane messages and the Manager <-> Agent control channel.

Section 3: the Manager "keep[s] a connection with all the Agents in the
network" and exposes "a set of APIs to control the state of NFs' containers
across all stations".  The reproduction models that connection as a
:class:`ControlChannel` with the one-way latency of the management path
(station <-> gateway <-> core), and the API as explicit message dataclasses,
so control-plane traffic volume and latency are measurable (benchmark E7).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.netem.simulator import Simulator

_message_ids = itertools.count(1)


@dataclass
class ControlMessage:
    """Base class for every Manager <-> Agent message."""

    def __post_init__(self) -> None:
        self.message_id = next(_message_ids)


@dataclass
class RegisterAgent(ControlMessage):
    """Agent -> Manager: a station came online."""

    station_name: str
    profile_name: str
    cpu_mhz: float
    memory_mb: float


@dataclass
class AgentHeartbeat(ControlMessage):
    """Agent -> Manager: periodic station state report."""

    station_name: str
    time: float
    resources: Dict[str, float] = field(default_factory=dict)
    switch: Dict[str, float] = field(default_factory=dict)
    nf_stats: Dict[str, Dict[str, object]] = field(default_factory=dict)
    connected_clients: List[str] = field(default_factory=list)
    #: Station-wide edge-cache totals (hits, misses, evictions, bytes served
    #: locally), aggregated by the Agent's collector source; the sharded and
    #: federated frontends stream the deltas into the rollup tree.
    cache: Dict[str, float] = field(default_factory=dict)


@dataclass
class ClientEvent(ControlMessage):
    """Agent -> Manager: a client (dis)connected from a cell on this station."""

    station_name: str
    client_ip: str
    client_name: str
    cell_name: str
    event: str  # "connected" | "disconnected"
    time: float


@dataclass
class NFNotificationMessage(ControlMessage):
    """Agent -> Manager: an NF raised a notification (intrusion, anomaly...)."""

    station_name: str
    nf_name: str
    severity: str
    message: str
    time: float
    details: Dict[str, object] = field(default_factory=dict)


@dataclass
class DeployChainRequest(ControlMessage):
    """Manager -> Agent: instantiate a chain for a client's traffic subset."""

    assignment_id: str
    client_ip: str
    chain_spec: List[Dict[str, object]] = field(default_factory=list)
    selector: Dict[str, object] = field(default_factory=dict)


@dataclass
class DeployChainResponse(ControlMessage):
    """Agent -> Manager: deployment finished (or failed)."""

    assignment_id: str
    station_name: str
    success: bool
    detail: str = ""
    deploy_latency_s: float = 0.0


@dataclass
class RemoveChainRequest(ControlMessage):
    """Manager -> Agent: tear down a client's chain."""

    assignment_id: str
    client_ip: str


class ControlChannel:
    """A latency-modelled, loss-free control connection to one Agent.

    ``call`` delivers a callback on the remote side after the one-way
    latency; both directions share the same latency figure (the management
    VLAN between the core and the station).
    """

    def __init__(self, simulator: Simulator, latency_s: float, name: str = "control") -> None:
        if latency_s < 0:
            raise ValueError(f"latency must be non-negative, got {latency_s}")
        self.simulator = simulator
        self.latency_s = latency_s
        self.name = name
        self.messages_delivered = 0
        self.bytes_estimate = 0

    def call(self, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> None:
        """Invoke ``callback`` on the far side after the control-plane latency."""
        self.messages_delivered += 1
        # Rough control message size for the traffic accounting in E7.
        self.bytes_estimate += 512
        self.simulator.schedule(self.latency_s, callback, *args, **kwargs)

    def sender(self, callback: Callable[[Any], None]) -> Callable[[Any], None]:
        """A one-argument sender delivering each message via :meth:`call`.

        Agents hold senders rather than (channel, callback) pairs so the
        transport is swappable: the sharded control plane hands out
        bus-coalescing senders with the same signature.
        """

        def send(message: Any) -> None:
            self.call(callback, message)

        return send

    def stats(self) -> Dict[str, float]:
        return {
            "latency_s": self.latency_s,
            "messages_delivered": float(self.messages_delivered),
            "bytes_estimate": float(self.bytes_estimate),
        }
