"""The migration engine: link-aware NF state movement between stations.

The paper's headline feature is that container NFs *follow* roaming users
("GNF seamlessly moves the NFs when the user roams between cells").  The
original reproduction modelled the cost of that move analytically: a state
transfer took ``size / bandwidth`` seconds, full stop.  That made every
strategy comparison blind to the thing that actually dominates a real edge
deployment -- the state bytes share the same uplink/backhaul links as the
clients' traffic.

This module rebuilds migration as a proper subsystem:

* :class:`StateTransferService` moves checkpoint bytes as **sized chunk
  packets over the simulated topology**: out of the source station's uplink
  port, through the gateway, down the target station's uplink, into a
  dedicated migration endpoint port on the target switch.  Chunks queue
  behind (and delay) client packets on the very same :class:`~repro.netem.link.Link`
  objects, pay per-hop propagation delay (the RTT model), are paced by a
  window that is clocked by arrivals, and survive loss/outages through a
  stall watchdog with bounded retries.
* :class:`MigrationEngine` owns the three strategies as pluggable policy
  objects -- :class:`ColdPolicy`, :class:`StatefulPolicy`,
  :class:`PrecopyPolicy` -- plus all roaming state (captured NF state,
  speculative replicas), with explicit lifecycle hooks so nothing leaks:
  state is dropped on migration finalize, on assignment release (detach),
  on same-station reconnects and at shutdown.
* Pre-copy is **iterative**: round *r* moves a dirty delta of
  ``size * dirty_fraction ** r`` over the links while the old chain keeps
  its state; rounds continue until the *estimated* next-delta transfer time
  (bandwidth + RTT, the :meth:`~repro.containers.checkpoint.Checkpoint.transfer_time_s`
  formula) drops under the downtime target or the round budget runs out,
  then the final delta is moved inside the freeze window.

Per-migration telemetry (rounds, freeze time, downtime, bytes moved) lands
on the :class:`MigrationRecord`; per-station transfer counters are published
through each Agent's :class:`~repro.telemetry.collector.ResourceCollector`
under the ``migration.*`` prefix.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.core.agent import ChainDeployment
from repro.core.api import ClientEvent
from repro.core.errors import MigrationError
from repro.core.manager import Assignment, AssignmentState
from repro.netem.host import VethPair
from repro.netem.flowtable import Action, Match
from repro.netem.packet import make_udp_packet
from repro.netem.simulator import Simulator
from repro.netem.topology import CHAIN_PRIORITY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netem.topology import EdgeStation

VALID_STRATEGIES = ("cold", "stateful", "precopy")

#: UDP destination port state-transfer chunks travel on (never collides with
#: workload traffic: generators use high client-side ports and 53/80/9000).
MIGRATION_PORT = 7077

_transfer_ids = itertools.count(1)


@dataclass
class MigrationRecord:
    """One completed (or failed) NF migration, with its full cost breakdown."""

    assignment_id: str
    client_ip: str
    nf_types: List[str]
    from_station: str
    to_station: str
    strategy: str
    started_at: float
    client_connected_at: float
    completed_at: Optional[float] = None
    #: Time after the client appeared at the new station during which its
    #: traffic was not covered by its NFs (the paper's service interruption).
    coverage_gap_s: Optional[float] = None
    state_transferred_mb: float = 0.0
    #: On-the-wire bytes the state transfer actually moved over the links
    #: (includes pre-copy rounds; 0 for cold migrations).
    bytes_moved: int = 0
    #: Pre-copy rounds run before the freeze (0 for cold/stateful).
    rounds: int = 0
    #: How long the chain was frozen: the checkpoint dump for stateful, the
    #: final-delta copy window for pre-copy.
    freeze_time_s: float = 0.0
    #: Service downtime of the chain switchover.  For cold/stateful this
    #: equals the coverage gap; for pre-copy it is the (much shorter)
    #: freeze-to-activation window.
    downtime_s: Optional[float] = None
    success: bool = False
    detail: str = ""

    @property
    def total_duration_s(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at


@dataclass
class TransferOutcome:
    """What a finished (or abandoned) state transfer reports back."""

    success: bool
    bytes_moved: int = 0
    duration_s: float = 0.0
    chunks_sent: int = 0
    retries: int = 0


class _Transfer:
    """Book-keeping for one in-flight state transfer."""

    __slots__ = (
        "transfer_id",
        "from_station",
        "to_station",
        "size_bytes",
        "chunk_bytes",
        "bytes_unsent",
        "bytes_outstanding",
        "bytes_moved",
        "chunks_sent",
        "started_at",
        "last_progress_at",
        "retries",
        "on_complete",
        "done",
    )

    def __init__(
        self,
        transfer_id: int,
        from_station: str,
        to_station: str,
        size_bytes: int,
        chunk_bytes: int,
        on_complete: Callable[[TransferOutcome], None],
        now: float,
    ) -> None:
        self.transfer_id = transfer_id
        self.from_station = from_station
        self.to_station = to_station
        self.size_bytes = size_bytes
        self.chunk_bytes = chunk_bytes
        self.bytes_unsent = size_bytes
        self.bytes_outstanding = 0
        self.bytes_moved = 0
        self.chunks_sent = 0
        self.started_at = now
        self.last_progress_at = now
        self.retries = 0
        self.on_complete = on_complete
        self.done = False


class _Endpoint:
    """A station's migration endpoint: a veth into the station switch."""

    __slots__ = ("station_name", "veth", "port_number", "ip", "mac")

    def __init__(self, station_name: str, veth: VethPair, port_number: int, ip: str, mac: str) -> None:
        self.station_name = station_name
        self.veth = veth
        self.port_number = port_number
        self.ip = ip
        self.mac = mac


class StateTransferService:
    """Moves migration state as chunked packets over the simulated links.

    The service lazily provisions one *migration endpoint* per station: a
    veth pair plugged into the station switch as a no-flood port, an IP from
    the control subnet, a steering rule (``ip_dst == endpoint``) on the
    switch and a gateway route.  A transfer then:

    1. injects chunk packets at the source station's uplink port interface
       (so they serialize behind -- and ahead of -- the station's client
       traffic on the uplink link),
    2. is routed by the gateway to the target station's uplink,
    3. arrives through the target switch's flow table at the endpoint port,
       where the service accounts the bytes and clocks the send window.

    Windowed pacing means long transfers adapt to congestion: a loaded
    backhaul delays chunk arrivals, which delays the next sends.  A stall
    watchdog re-opens the window after ``stall_timeout_s`` without progress
    and gives up (reporting failure) after ``max_retries`` stalls, so a
    downed uplink can never wedge a migration -- or the event queue --
    forever.
    """

    def __init__(
        self,
        simulator: Simulator,
        manager,
        chunk_bytes: int = 65536,
        window_chunks: int = 32,
        stall_timeout_s: float = 3.0,
        max_retries: int = 5,
        fallback_bandwidth_bps: float = 100e6,
    ) -> None:
        if chunk_bytes <= 0:
            raise MigrationError(f"chunk_bytes must be positive, got {chunk_bytes}")
        self.simulator = simulator
        self.manager = manager
        self.chunk_bytes = chunk_bytes
        #: Bandwidth assumed by the analytic path (no routable topology).
        self.fallback_bandwidth_bps = fallback_bandwidth_bps
        self.window_chunks = max(1, window_chunks)
        self.stall_timeout_s = stall_timeout_s
        self.max_retries = max_retries
        self._endpoints: Dict[str, _Endpoint] = {}
        self._transfers: Dict[int, _Transfer] = {}
        # Per-station wire counters, published via the Agents' collectors.
        self.station_counters: Dict[str, Dict[str, float]] = {}
        self.transfers_started = 0
        self.transfers_completed = 0
        self.transfers_failed = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.chunks_retransmitted = 0

    # ------------------------------------------------------------- endpoints

    def active_transfer_stations(self) -> Set[str]:
        """Stations currently sending or receiving state-transfer chunks.

        The hybrid simulation core treats these as packet-fidelity islands:
        bulk flows touching them are demoted so checkpoint chunks and client
        traffic contend on the real uplinks.
        """
        stations: Set[str] = set()
        for transfer in self._transfers.values():
            if transfer.done:
                continue
            stations.add(transfer.from_station)
            stations.add(transfer.to_station)
        return stations

    def _counters(self, station_name: str) -> Dict[str, float]:
        counters = self.station_counters.get(station_name)
        if counters is None:
            counters = self.station_counters[station_name] = {
                "state_bytes_sent": 0.0,
                "state_bytes_received": 0.0,
                "state_chunks_sent": 0.0,
                "state_chunks_received": 0.0,
                "transfers_out": 0.0,
                "transfers_in": 0.0,
            }
        return counters

    def _endpoint(self, station_name: str) -> Optional[_Endpoint]:
        """The station's migration endpoint, provisioned on first use."""
        endpoint = self._endpoints.get(station_name)
        if endpoint is not None:
            return endpoint
        topology = self.manager.topology
        if topology is None or station_name not in topology.stations:
            return None
        station: "EdgeStation" = topology.stations[station_name]
        addresses = topology.addresses
        veth = VethPair(
            self.simulator,
            f"{station_name}-mig",
            addresses.allocate_mac(),
            addresses.allocate_mac(),
        )
        port = station.switch.add_port(veth.end_a, no_flood=True)
        ip = addresses.allocate_ip("control", owner=f"migration:{station_name}")
        veth.end_b.ip = ip
        veth.end_b.delivery_override = self._on_chunk
        veth.end_b.batch_delivery_override = self._on_chunk_batch
        # Steer arriving state chunks out of the flow pipeline into the
        # endpoint port (same priority band as chain rules: chunks must
        # never fall through to L2 flooding).
        station.switch.flow_table.add(
            priority=CHAIN_PRIORITY,
            match=Match(ip_dst=ip),
            actions=[Action.output(port.number)],
            cookie=f"migration-endpoint:{station_name}",
        )
        topology.gateway.register_migration_endpoint(ip, veth.end_b.mac, station_name)
        endpoint = _Endpoint(
            station_name=station_name,
            veth=veth,
            port_number=port.number,
            ip=ip,
            mac=veth.end_b.mac,
        )
        self._endpoints[station_name] = endpoint
        # Publish the station's transfer counters through its Agent collector.
        agent = self.manager.agents.get(station_name)
        if agent is not None:
            counters = self._counters(station_name)
            agent.collector.add_source("migration", lambda counters=counters: dict(counters))
        return endpoint

    # -------------------------------------------------------------- transfer

    def transfer(
        self,
        from_station: str,
        to_station: str,
        size_bytes: int,
        on_complete: Callable[[TransferOutcome], None],
    ) -> None:
        """Move ``size_bytes`` of state between two stations over the links.

        ``on_complete(outcome)`` fires when every byte arrived (success) or
        the retry budget ran out (failure).  Falls back to an analytic delay
        when the deployment has no routable topology (unit-test managers).
        """
        size_bytes = int(size_bytes)
        if size_bytes <= 0 or from_station == to_station:
            self.simulator.schedule(
                0.0, on_complete, TransferOutcome(success=True, bytes_moved=max(0, size_bytes))
            )
            return
        source = self._endpoint(from_station)
        target = self._endpoint(to_station)
        if source is None or target is None:
            self._analytic_transfer(from_station, to_station, size_bytes, on_complete)
            return
        self.transfers_started += 1
        self._counters(from_station)["transfers_out"] += 1
        self._counters(to_station)["transfers_in"] += 1
        transfer = _Transfer(
            transfer_id=next(_transfer_ids),
            from_station=from_station,
            to_station=to_station,
            size_bytes=size_bytes,
            chunk_bytes=self.chunk_bytes,
            on_complete=on_complete,
            now=self.simulator.now,
        )
        self._transfers[transfer.transfer_id] = transfer
        self._send_window(transfer)
        self.simulator.schedule(self.stall_timeout_s, self._watchdog, transfer)

    def _analytic_transfer(
        self,
        from_station: str,
        to_station: str,
        size_bytes: int,
        on_complete: Callable[[TransferOutcome], None],
    ) -> None:
        """Bandwidth + RTT formula fallback when no topology links exist."""
        duration = self.estimate_transfer_time(from_station, to_station, size_bytes)
        self.transfers_started += 1
        self.transfers_completed += 1
        self.bytes_sent += size_bytes
        self.bytes_received += size_bytes
        self.simulator.schedule(
            duration,
            on_complete,
            TransferOutcome(success=True, bytes_moved=size_bytes, duration_s=duration),
        )

    def estimate_transfer_time(self, from_station: str, to_station: str, size_bytes: int) -> float:
        """Expected seconds to move ``size_bytes`` (the planning estimate).

        Uses the same shape as :meth:`Checkpoint.transfer_time_s`: one RTT of
        protocol overhead plus serialization at the narrowest hop.  The live
        transfer over the links will take at least this long -- more when the
        backhaul is congested.
        """
        bandwidth = self._path_bandwidth_bps(from_station, to_station)
        rtt = self._path_rtt_s(from_station, to_station)
        return rtt + (size_bytes * 8) / bandwidth

    def _path_bandwidth_bps(self, from_station: str, to_station: str) -> float:
        topology = self.manager.topology
        if topology is None:
            return self.fallback_bandwidth_bps
        links = topology.uplink_links
        bandwidths = [
            links[name].bandwidth_bps for name in (from_station, to_station) if name in links
        ]
        return min(bandwidths) if bandwidths else topology.config.uplink_bandwidth_bps

    def _path_rtt_s(self, from_station: str, to_station: str) -> float:
        topology = self.manager.topology
        if topology is None:
            return 0.02
        return 2 * topology.station_to_station_latency(from_station, to_station)

    # ------------------------------------------------------------ chunk I/O

    def _send_window(self, transfer: _Transfer) -> None:
        """Send chunks until the window is full or nothing is left to send."""
        budget = self.window_chunks * transfer.chunk_bytes - transfer.bytes_outstanding
        while transfer.bytes_unsent > 0 and budget > 0 and not transfer.done:
            chunk = min(transfer.chunk_bytes, transfer.bytes_unsent)
            if not self._send_chunk(transfer, chunk):
                # The uplink refused the chunk (link down / queue full): stop
                # pushing; the watchdog re-opens the window later.
                return
            transfer.bytes_unsent -= chunk
            transfer.bytes_outstanding += chunk
            budget -= chunk

    def _send_chunk(self, transfer: _Transfer, chunk_bytes: int) -> bool:
        topology = self.manager.topology
        source = self._endpoints.get(transfer.from_station)
        target = self._endpoints.get(transfer.to_station)
        if topology is None or source is None or target is None:
            return False
        station = topology.stations.get(transfer.from_station)
        if station is None or station.uplink_port is None:
            return False
        uplink_port = station.switch.ports.get(station.uplink_port)
        if uplink_port is None:
            return False
        packet = make_udp_packet(
            src_ip=source.ip,
            dst_ip=target.ip,
            src_port=40_000 + (transfer.transfer_id % 20_000),
            dst_port=MIGRATION_PORT,
            payload_bytes=chunk_bytes,
            src_mac=source.mac,
            dst_mac=topology.gateway_mac_for.get(transfer.from_station, source.mac),
            created_at=self.simulator.now,
        )
        packet.metadata["migration_transfer"] = transfer.transfer_id
        accepted = uplink_port.interface.send(packet)
        if accepted:
            transfer.chunks_sent += 1
            self.bytes_sent += chunk_bytes
            counters = self._counters(transfer.from_station)
            counters["state_bytes_sent"] += chunk_bytes
            counters["state_chunks_sent"] += 1
        return accepted

    def _on_chunk(self, packet, _interface) -> None:
        transfer_id = packet.metadata.get("migration_transfer")
        transfer = self._transfers.get(transfer_id)
        if transfer is None or transfer.done:
            return  # late duplicate of a finished/abandoned transfer
        payload = packet.payload_bytes
        transfer.bytes_moved += payload
        transfer.bytes_outstanding = max(0, transfer.bytes_outstanding - payload)
        transfer.last_progress_at = self.simulator.now
        self.bytes_received += payload
        counters = self._counters(transfer.to_station)
        counters["state_bytes_received"] += payload
        counters["state_chunks_received"] += 1
        if transfer.bytes_moved >= transfer.size_bytes:
            self._finish(transfer, success=True)
            return
        self._send_window(transfer)

    def _on_chunk_batch(self, packets, interface) -> None:
        for packet in packets:
            self._on_chunk(packet, interface)

    def _watchdog(self, transfer: _Transfer) -> None:
        """Re-arm the window after a stall; give up after the retry budget."""
        if transfer.done:
            return
        now = self.simulator.now
        if now - transfer.last_progress_at < self.stall_timeout_s:
            remaining = self.stall_timeout_s - (now - transfer.last_progress_at)
            self.simulator.schedule(remaining, self._watchdog, transfer)
            return
        transfer.retries += 1
        if transfer.retries > self.max_retries:
            self._finish(transfer, success=False)
            return
        # Whatever was outstanding is presumed lost (dropped on a downed or
        # overflowing link): put it back on the unsent ledger and resend.
        lost = transfer.bytes_outstanding
        if lost > 0:
            self.chunks_retransmitted += -(-lost // transfer.chunk_bytes)
        transfer.bytes_unsent += lost
        transfer.bytes_outstanding = 0
        transfer.last_progress_at = now
        self._send_window(transfer)
        self.simulator.schedule(self.stall_timeout_s, self._watchdog, transfer)

    def _finish(self, transfer: _Transfer, success: bool) -> None:
        if transfer.done:
            return
        transfer.done = True
        self._transfers.pop(transfer.transfer_id, None)
        if success:
            self.transfers_completed += 1
        else:
            self.transfers_failed += 1
        transfer.on_complete(
            TransferOutcome(
                success=success,
                bytes_moved=transfer.bytes_moved,
                duration_s=self.simulator.now - transfer.started_at,
                chunks_sent=transfer.chunks_sent,
                retries=transfer.retries,
            )
        )

    def cancel_all(self) -> None:
        """Abandon every in-flight transfer (engine shutdown)."""
        for transfer in list(self._transfers.values()):
            transfer.done = True
            self._transfers.pop(transfer.transfer_id, None)

    def summary(self) -> Dict[str, float]:
        return {
            "transfers_started": float(self.transfers_started),
            "transfers_completed": float(self.transfers_completed),
            "transfers_failed": float(self.transfers_failed),
            "state_bytes_sent": float(self.bytes_sent),
            "state_bytes_received": float(self.bytes_received),
            "chunks_retransmitted": float(self.chunks_retransmitted),
        }


# ---------------------------------------------------------------------------
# Strategy policies
# ---------------------------------------------------------------------------


class MigrationPolicy:
    """One migration strategy, invoked by the engine's event hooks."""

    name = "abstract"

    def __init__(self, engine: "MigrationEngine") -> None:
        self.engine = engine

    def client_left(self, assignment: Assignment, event: ClientEvent) -> None:
        """The client left the station hosting its chain (prepare phase)."""

    def migrate(self, assignment: Assignment, event: ClientEvent, record: MigrationRecord) -> None:
        """The client appeared at a new station: move the chain there."""
        raise NotImplementedError


class ColdPolicy(MigrationPolicy):
    """The demo's approach: fresh equivalent chain, state is lost."""

    name = "cold"

    def migrate(self, assignment: Assignment, event: ClientEvent, record: MigrationRecord) -> None:
        engine = self.engine
        old_station = assignment.station_name
        new_agent = engine.manager.agent(event.station_name)

        def on_complete(deployment: ChainDeployment, success: bool, detail: str) -> None:
            engine.finalize(assignment, record, old_station, success, detail)

        engine.manager.channels[event.station_name].call(
            new_agent.deploy_chain,
            assignment.assignment_id,
            assignment.client_ip,
            assignment.head_chain(),
            assignment.selector,
            None,
            on_complete,
        )


class StatefulPolicy(MigrationPolicy):
    """Checkpoint at the old station, move the bytes, restore at the new one."""

    name = "stateful"

    def client_left(self, assignment: Assignment, event: ClientEvent) -> None:
        self.engine.capture_state(assignment)

    def migrate(self, assignment: Assignment, event: ClientEvent, record: MigrationRecord) -> None:
        engine = self.engine
        old_station = assignment.station_name
        old_agent = engine.manager.agents.get(old_station)

        nf_states: List[Dict[str, object]] = []
        state_mb = 0.0
        freeze_s = 0.0
        if old_agent is not None:
            checkpoints, freeze_s = old_agent.checkpoint_chain(assignment.assignment_id)
            nf_states = [dict(checkpoint.nf_state) for checkpoint in checkpoints]
            state_mb = sum(checkpoint.size_mb for checkpoint in checkpoints)
        if not nf_states:
            # The old chain is gone (crashed station, torn down): restore
            # from the state captured when the client left, if any.
            nf_states = engine._captured_state.get(assignment.assignment_id, [])
            state_mb = engine.serialized_state_mb(nf_states)
        record.state_transferred_mb = state_mb
        record.freeze_time_s = freeze_s

        def after_transfer(outcome: TransferOutcome) -> None:
            record.bytes_moved += outcome.bytes_moved
            states = nf_states
            detail = "checkpoint restored at new station"
            if not outcome.success:
                # The backhaul never delivered the state: bring the chain up
                # cold rather than stranding the client without coverage.
                states = []
                detail = "state transfer failed; restarted without state"
            new_agent = engine.manager.agent(event.station_name)

            def on_complete(deployment: ChainDeployment, success: bool, deploy_detail: str) -> None:
                engine.finalize(
                    assignment, record, old_station, success, detail if success else deploy_detail
                )

            engine.manager.channels[event.station_name].call(
                new_agent.deploy_chain,
                assignment.assignment_id,
                assignment.client_ip,
                assignment.head_chain(),
                assignment.selector,
                states,
                on_complete,
            )

        def start_transfer() -> None:
            engine.transfers.transfer(
                old_station, event.station_name, int(state_mb * 1e6), after_transfer
            )

        # The chain freezes for the checkpoint dump, then the bytes ride the
        # backhaul links (congesting with client traffic, paying the RTT).
        engine.simulator.schedule(freeze_s, start_transfer)


class PrecopyPolicy(MigrationPolicy):
    """Make-before-break with iterative dirty-delta rounds.

    When the client leaves, replicas boot on candidate next stations while
    the old chain keeps its state.  When the client reappears next to a
    replica, rounds of shrinking dirty deltas are copied over the links
    while the old chain stays authoritative; once the estimated next-round
    copy fits inside the downtime target (or the round budget is spent),
    the final delta moves inside the freeze window and the replica takes
    over.
    """

    name = "precopy"

    def client_left(self, assignment: Assignment, event: ClientEvent) -> None:
        engine = self.engine
        engine.start_speculative_replicas(assignment, exclude_station=event.station_name)
        engine.capture_state(assignment)

    def migrate(self, assignment: Assignment, event: ClientEvent, record: MigrationRecord) -> None:
        engine = self.engine
        assignment_id = assignment.assignment_id
        replicas = engine._speculative.get(assignment_id, {})
        replica = replicas.get(event.station_name)
        if replica is None:
            # No replica was started where the client actually went: tear
            # down the mispredicted ones and fall back to a cold migration
            # (still accounted against the precopy strategy).
            engine.cleanup_speculative(assignment_id, keep_station=None)
            record.detail = "no replica at target; cold fallback"
            engine.policies["cold"].migrate(assignment, event, record)
            return
        if replica.active_at is None:
            # The replica is still booting.  Adopt it instead of tearing it
            # down and double-deploying the same chain id in the same tick:
            # the switchover runs as soon as the boot completes (or falls
            # back to cold if the boot fails).
            engine._pending_precopy[assignment_id] = (assignment, event, record)
            record.detail = "adopted still-booting replica"
            return
        self.switch_over(assignment, event, record, replica)

    # ------------------------------------------------------------- rounds

    def switch_over(
        self,
        assignment: Assignment,
        event: ClientEvent,
        record: MigrationRecord,
        replica: ChainDeployment,
    ) -> None:
        engine = self.engine
        old_station = assignment.station_name
        captured = engine._captured_state.get(assignment.assignment_id, [])
        size_mb = engine.serialized_state_mb(captured)
        record.state_transferred_mb = size_mb

        def run_round(round_index: int, delta_mb: float) -> None:
            # If copying the *current* dirty delta fits inside the downtime
            # target (or the round budget is spent), do it inside the freeze
            # window; otherwise copy it live and recurse on the shrunk delta.
            estimate = engine.transfers.estimate_transfer_time(
                old_station, event.station_name, int(delta_mb * 1e6)
            )
            final = (
                estimate <= engine.precopy_downtime_target_s
                or round_index + 1 >= engine.precopy_max_rounds
                or delta_mb <= 0.0
            )
            if final:
                freeze_started = engine.simulator.now

                def after_final(outcome: TransferOutcome) -> None:
                    record.bytes_moved += outcome.bytes_moved
                    record.freeze_time_s = outcome.duration_s
                    self._activate(assignment, event, record, replica, captured, freeze_started)

                engine.transfers.transfer(
                    old_station, event.station_name, int(delta_mb * 1e6), after_final
                )
                return

            def after_round(outcome: TransferOutcome) -> None:
                record.bytes_moved += outcome.bytes_moved
                record.rounds += 1
                run_round(round_index + 1, delta_mb * engine.precopy_dirty_fraction)

            engine.transfers.transfer(
                old_station, event.station_name, int(delta_mb * 1e6), after_round
            )

        run_round(0, size_mb)

    def _activate(
        self,
        assignment: Assignment,
        event: ClientEvent,
        record: MigrationRecord,
        replica: ChainDeployment,
        captured: List[Dict[str, object]],
        freeze_started: float,
    ) -> None:
        engine = self.engine
        old_station = assignment.station_name
        new_agent = engine.manager.agents.get(event.station_name)
        channel = engine.manager.channels.get(event.station_name)
        if new_agent is None or channel is None:
            engine.finalize(assignment, record, old_station, False, "target station vanished")
            return

        def activate() -> None:
            for index, deployed in enumerate(replica.deployed_nfs):
                if index < len(captured) and captured[index]:
                    deployed.nf.import_state(captured[index])
            new_agent.set_chain_active(assignment.assignment_id, True)
            record.downtime_s = engine.simulator.now - freeze_started
            engine.cleanup_speculative(assignment.assignment_id, keep_station=event.station_name)
            engine.finalize(
                assignment, record, old_station, True, "switched to pre-copied replica"
            )

        channel.call(activate)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class MigrationEngine:
    """Unifies the migration strategies behind one link-aware subsystem.

    Owned by the :class:`~repro.core.roaming.RoamingCoordinator` (which
    remains the Manager-facing event surface); the engine holds the policy
    objects, the state-transfer service, the captured-state and speculative
    -replica ledgers, and every lifecycle hook that keeps those ledgers
    bounded (finalize, release, same-station reconnect, shutdown).
    """

    def __init__(
        self,
        simulator: Simulator,
        manager,
        strategy: str = "cold",
        transfer_bandwidth_bps: Optional[float] = None,
        speculative_station_limit: int = 3,
        chunk_bytes: int = 65536,
        precopy_max_rounds: int = 4,
        precopy_downtime_target_s: float = 0.05,
        precopy_dirty_fraction: float = 0.25,
    ) -> None:
        if strategy not in VALID_STRATEGIES:
            raise MigrationError(
                f"unknown migration strategy {strategy!r}; valid: {VALID_STRATEGIES}"
            )
        if not 0.0 < precopy_dirty_fraction < 1.0:
            raise MigrationError(
                f"precopy_dirty_fraction must be in (0, 1), got {precopy_dirty_fraction}"
            )
        if precopy_max_rounds < 1:
            raise MigrationError(f"precopy_max_rounds must be >= 1, got {precopy_max_rounds}")
        self.simulator = simulator
        self.manager = manager
        self.strategy = strategy
        self.speculative_station_limit = speculative_station_limit
        self.precopy_max_rounds = precopy_max_rounds
        self.precopy_downtime_target_s = precopy_downtime_target_s
        self.precopy_dirty_fraction = precopy_dirty_fraction
        if transfer_bandwidth_bps is None and manager.topology is not None:
            transfer_bandwidth_bps = manager.topology.config.uplink_bandwidth_bps
        self.transfer_bandwidth_bps = transfer_bandwidth_bps or 100e6
        self.transfers = StateTransferService(
            simulator,
            manager,
            chunk_bytes=chunk_bytes,
            fallback_bandwidth_bps=self.transfer_bandwidth_bps,
        )
        self.records: List[MigrationRecord] = []
        # assignment_id -> station -> speculative deployment (precopy only).
        self._speculative: Dict[str, Dict[str, ChainDeployment]] = {}
        # assignment_id -> exported state captured when the client left.
        self._captured_state: Dict[str, List[Dict[str, object]]] = {}
        # assignment_id -> migration waiting for a replica boot to finish.
        self._pending_precopy: Dict[str, Tuple[Assignment, ClientEvent, MigrationRecord]] = {}
        self.policies: Dict[str, MigrationPolicy] = {
            "cold": ColdPolicy(self),
            "stateful": StatefulPolicy(self),
            "precopy": PrecopyPolicy(self),
        }
        self.policy = self.policies[strategy]

    # ----------------------------------------------------------- event hooks

    def client_disconnected(self, assignment: Assignment, event: ClientEvent) -> None:
        self.policy.client_left(assignment, event)

    def client_connected(self, assignment: Assignment, event: ClientEvent) -> MigrationRecord:
        record = MigrationRecord(
            assignment_id=assignment.assignment_id,
            client_ip=assignment.client_ip,
            # Only the head segment roams with the client; remote segments
            # of a split embedding stay where the embedding put them.
            nf_types=assignment.head_chain().nf_types,
            from_station=assignment.station_name,
            to_station=event.station_name,
            strategy=self.strategy,
            started_at=self.simulator.now,
            client_connected_at=event.time,
        )
        self.records.append(record)
        # A fresh connect supersedes any migration still waiting on a
        # replica boot from a previous roam: without this, a later boot at
        # the old target station would replay the stale switch-over.
        self._pending_precopy.pop(assignment.assignment_id, None)
        assignment.state = AssignmentState.MIGRATING
        self.policy.migrate(assignment, event, record)
        return record

    def client_reconnected(self, assignment: Assignment, event: ClientEvent) -> None:
        """The client came back to the station already hosting its chain.

        Nothing migrates, but any roaming state staged while the client was
        away (captured exports, speculative replicas) is now dead weight --
        dropping it here is what keeps the ledgers bounded on shuttling
        clients that keep returning home.
        """
        self._captured_state.pop(assignment.assignment_id, None)
        self._pending_precopy.pop(assignment.assignment_id, None)
        self.cleanup_speculative(assignment.assignment_id, keep_station=None)

    def assignment_released(self, assignment_id: str) -> None:
        """The assignment was detached: drop every piece of roaming state."""
        self._captured_state.pop(assignment_id, None)
        self._pending_precopy.pop(assignment_id, None)
        self.cleanup_speculative(assignment_id, keep_station=None)

    def shutdown(self) -> None:
        """End-of-run cleanup: abandon transfers, tear down replicas."""
        self.transfers.cancel_all()
        self._pending_precopy.clear()
        self._captured_state.clear()
        for assignment_id in list(self._speculative):
            self.cleanup_speculative(assignment_id, keep_station=None)

    # ------------------------------------------------------------- finalize

    def finalize(
        self,
        assignment: Assignment,
        record: MigrationRecord,
        old_station: str,
        success: bool,
        detail: str = "",
    ) -> None:
        record.completed_at = self.simulator.now
        record.success = success
        if detail:
            record.detail = f"{record.detail}; {detail}" if record.detail else detail
        # Whatever state was captured for this migration has been consumed
        # (or is now stale): never let it survive into a later roam.
        self._captured_state.pop(assignment.assignment_id, None)
        if assignment.state is AssignmentState.REMOVED:
            # A detach raced the migration: never resurrect the assignment,
            # and tear down whatever the migration just deployed -- the
            # detach itself only removed the chain at the *old* home station.
            record.success = False
            record.detail = (
                f"{record.detail}; assignment detached mid-migration"
                if record.detail
                else "assignment detached mid-migration"
            )
            for station_name in {old_station, record.to_station}:
                agent = self.manager.agents.get(station_name)
                if agent is not None:
                    self.manager.channels[station_name].call(
                        agent.remove_chain, assignment.assignment_id
                    )
            return
        if success:
            record.coverage_gap_s = max(0.0, self.simulator.now - record.client_connected_at)
            if record.downtime_s is None:
                record.downtime_s = record.coverage_gap_s
            assignment.station_name = record.to_station
            assignment.head_moved(record.to_station)
            assignment.station_history.append(record.to_station)
            assignment.migrations += 1
            assignment.state = AssignmentState.ACTIVE
            assignment.active_at = self.simulator.now
            # Tell the Manager the assignment's home station moved: a plain
            # GNFManager ignores this, a sharded frontend hands the
            # assignment off to the shard owning the new station.
            self.manager.assignment_station_changed(assignment, old_station)
            # Reconcile with the assignment's time schedule: the re-deploy at
            # the new station steers by default, but if the schedule window is
            # currently closed the chain must come up unsteered (the scheduler
            # itself won't correct this -- it already recorded the assignment
            # as disabled, so it sees no transition to drive).
            if not assignment.schedule.is_active(self.simulator.now):
                new_agent = self.manager.agents.get(record.to_station)
                if new_agent is not None:
                    self.manager.channels[record.to_station].call(
                        new_agent.set_chain_active, assignment.assignment_id, False
                    )
        else:
            assignment.state = AssignmentState.FAILED
            assignment.failure_reason = record.detail
        # Remove the old chain regardless; the station the client left should
        # not keep spending resources on it.  The removal also invalidates the
        # old station's fast path: remove_chain flushes the client's cached
        # verdicts and the rule removal bumps the table generation, so no
        # stale verdict can keep steering the roamed client's traffic into
        # the chain being torn down.
        old_agent = self.manager.agents.get(old_station)
        if old_agent is not None and old_station != record.to_station:
            self.manager.channels[old_station].call(old_agent.remove_chain, assignment.assignment_id)

    # ----------------------------------------------------------- speculation

    def capture_state(self, assignment: Assignment) -> None:
        """Export the chain's NF state at the moment the client left."""
        agent = self.manager.agents.get(assignment.station_name)
        if agent is not None:
            self._captured_state[assignment.assignment_id] = agent.export_chain_state(
                assignment.assignment_id
            )

    def start_speculative_replicas(self, assignment: Assignment, exclude_station: str) -> None:
        """Boot replicas of the chain on candidate next stations (precopy).

        Candidates are ordered by inter-station latency (nearest first, name
        as the deterministic tie-break) so the replicas land where a roaming
        client is most likely to reappear.
        """
        replicas = self._speculative.setdefault(assignment.assignment_id, {})
        topology = self.manager.topology
        home = assignment.station_name

        def distance(name: str) -> float:
            if topology is None or home not in topology.stations or name not in topology.stations:
                return 0.0
            return topology.station_to_station_latency(home, name)

        candidates = sorted(
            (name for name in self.manager.agents if name != exclude_station),
            key=lambda name: (distance(name), name),
        )
        for station_name in candidates[: self.speculative_station_limit]:
            if station_name in replicas:
                continue
            agent = self.manager.agent(station_name)
            deployment = agent.deploy_chain(
                assignment.assignment_id,
                assignment.client_ip,
                assignment.head_chain(),
                assignment.selector,
                None,
                self._replica_boot_finished(assignment.assignment_id, station_name),
            )
            replicas[station_name] = deployment

    def _replica_boot_finished(
        self, assignment_id: str, station_name: str
    ) -> Callable[[ChainDeployment, bool, str], None]:
        def on_complete(deployment: ChainDeployment, success: bool, detail: str) -> None:
            replicas = self._speculative.get(assignment_id)
            if replicas is None or replicas.get(station_name) is not deployment:
                return  # the replica was already cleaned up / superseded
            if not success:
                # A replica that failed to boot is no replica at all: drop
                # the ledger entry so it cannot leak (the agent already
                # rolled the containers back).
                replicas.pop(station_name, None)
                if not replicas:
                    self._speculative.pop(assignment_id, None)
            pending = self._pending_precopy.pop(assignment_id, None)
            if pending is None:
                return
            assignment, event, record = pending
            if assignment.state is not AssignmentState.MIGRATING:
                return  # detached or superseded while the replica booted
            if event.station_name != station_name:
                self._pending_precopy[assignment_id] = pending
                return
            policy = self.policies["precopy"]
            if success:
                assert isinstance(policy, PrecopyPolicy)
                policy.switch_over(assignment, event, record, deployment)
            else:
                self.cleanup_speculative(assignment_id, keep_station=None)
                record.detail = (record.detail + "; replica boot failed, cold fallback").lstrip("; ")
                self.policies["cold"].migrate(assignment, event, record)

        return on_complete

    def cleanup_speculative(self, assignment_id: str, keep_station: Optional[str]) -> None:
        """Remove speculative replicas that were not (or no longer) needed."""
        replicas = self._speculative.pop(assignment_id, {})
        for station_name, deployment in replicas.items():
            if station_name == keep_station:
                continue
            agent = self.manager.agents.get(station_name)
            if agent is not None:
                self.manager.channels[station_name].call(agent.remove_chain, assignment_id)

    # --------------------------------------------------------------- stats

    @staticmethod
    def serialized_state_mb(states: List[Dict[str, object]]) -> float:
        """Size of exported NF state on the wire, in (decimal) MB."""
        return sum(len(str(state)) for state in states if state) / 1e6

    def estimate_copy_time_s(self, station_name: str, size_mb: float) -> float:
        """Seconds to copy ``size_mb`` of state *within* ``station_name``.

        The bundle-upgrade orchestrator uses this for its same-station
        old->new chain copies: the serialization cost is real (the state
        crosses the container boundary at the station's narrowest local
        rate) even though no backhaul link is traversed.
        """
        if size_mb <= 0:
            return 0.0
        return self.transfers.estimate_transfer_time(
            station_name, station_name, int(size_mb * 1e6)
        )

    def completed_migrations(self) -> List[MigrationRecord]:
        return [
            record for record in self.records if record.completed_at is not None and record.success
        ]

    def mean_coverage_gap_s(self) -> float:
        gaps = [
            record.coverage_gap_s
            for record in self.completed_migrations()
            if record.coverage_gap_s is not None
        ]
        return sum(gaps) / len(gaps) if gaps else 0.0

    def summary(self) -> Dict[str, float]:
        completed = self.completed_migrations()
        downtimes = [r.downtime_s for r in completed if r.downtime_s is not None]
        summary = {
            "strategy_" + self.strategy: 1.0,
            "migrations_started": float(len(self.records)),
            "migrations_completed": float(len(completed)),
            "mean_coverage_gap_s": self.mean_coverage_gap_s(),
            "mean_downtime_s": sum(downtimes) / len(downtimes) if downtimes else 0.0,
            "mean_state_transferred_mb": (
                sum(record.state_transferred_mb for record in completed) / len(completed)
                if completed
                else 0.0
            ),
            "total_precopy_rounds": float(sum(record.rounds for record in self.records)),
            "state_bytes_moved": float(sum(record.bytes_moved for record in self.records)),
        }
        summary.update({f"transfer_{k}": v for k, v in self.transfers.summary().items()})
        return summary
