"""Manager-side notification centre.

Section 3: "individual NFs can relay notifications through their local Agent
to the Manager, informing the provider about events that should be reviewed
such as an unexpected or inconsistent NF state or expected but anomalous
events such as an intrusion attempt or detected malware."

Notifications received from Agents are stored here, are queryable by
severity/station/NF, and fan out to subscribers (the UI shows them; tests and
benchmark E8 measure their delivery latency and completeness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class ProviderNotification:
    """A notification as stored by the Manager."""

    received_at: float
    raised_at: float
    station_name: str
    nf_name: str
    severity: str
    message: str
    details: Dict[str, object] = field(default_factory=dict)
    acknowledged: bool = False

    @property
    def delivery_latency_s(self) -> float:
        """Time from the NF raising the event to the Manager storing it."""
        return max(0.0, self.received_at - self.raised_at)


NotificationSubscriber = Callable[[ProviderNotification], None]

#: Ordering used when filtering by minimum severity.
SEVERITY_ORDER = {"debug": 0, "info": 1, "warning": 2, "critical": 3}


class NotificationCenter:
    """Stores, filters and fans out provider notifications."""

    def __init__(self, max_notifications: int = 10_000) -> None:
        self.max_notifications = max_notifications
        self._notifications: List[ProviderNotification] = []
        self._subscribers: List[NotificationSubscriber] = []

    def subscribe(self, subscriber: NotificationSubscriber) -> None:
        self._subscribers.append(subscriber)

    def publish(self, notification: ProviderNotification) -> ProviderNotification:
        self._notifications.append(notification)
        if len(self._notifications) > self.max_notifications:
            self._notifications = self._notifications[-self.max_notifications :]
        for subscriber in self._subscribers:
            subscriber(notification)
        return notification

    def publish_batch(self, notifications: List[ProviderNotification]) -> None:
        """Publish a coalesced burst (the sharded control bus's entry point).

        A single centre may be shared by every Manager shard -- provider
        notifications are a network-global stream, so aggregation happens by
        construction rather than by merging per-shard stores.
        """
        self._notifications.extend(notifications)
        if len(self._notifications) > self.max_notifications:
            self._notifications = self._notifications[-self.max_notifications :]
        if self._subscribers:
            for notification in notifications:
                for subscriber in self._subscribers:
                    subscriber(notification)

    # -------------------------------------------------------------- queries

    def all(self) -> List[ProviderNotification]:
        return list(self._notifications)

    def __len__(self) -> int:
        return len(self._notifications)

    def by_severity(self, minimum: str = "info") -> List[ProviderNotification]:
        """Notifications at or above a minimum severity."""
        threshold = SEVERITY_ORDER.get(minimum, 1)
        return [
            notification
            for notification in self._notifications
            if SEVERITY_ORDER.get(notification.severity, 1) >= threshold
        ]

    def by_station(self, station_name: str) -> List[ProviderNotification]:
        return [n for n in self._notifications if n.station_name == station_name]

    def by_nf(self, nf_name: str) -> List[ProviderNotification]:
        return [n for n in self._notifications if n.nf_name == nf_name]

    def unacknowledged(self) -> List[ProviderNotification]:
        return [n for n in self._notifications if not n.acknowledged]

    def acknowledge_all(self) -> int:
        count = 0
        for notification in self._notifications:
            if not notification.acknowledged:
                notification.acknowledged = True
                count += 1
        return count

    def summary(self) -> Dict[str, int]:
        """Counts per severity for the UI's header."""
        counts: Dict[str, int] = {}
        for notification in self._notifications:
            counts[notification.severity] = counts.get(notification.severity, 0) + 1
        return counts
