"""Manager-side health and resource monitoring.

Section 3: "The Manager is also responsible for continuously monitoring the
health and resource utilization from the GNF stations, allowing the provider
to detect resource-hotspots and therefore the part of the infrastructure
that should be upgraded."

* :class:`HealthMonitor` tracks Agent liveness from heartbeat arrival times.
* :class:`HotspotDetector` flags stations whose memory or CPU pressure stays
  above a threshold, which the UI surfaces as upgrade candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.telemetry.metrics import MetricsRegistry


@dataclass
class StationHealth:
    """Liveness record for one station's Agent."""

    station_name: str
    registered_at: float
    last_heartbeat_at: float
    heartbeats_received: int = 0

    def is_online(self, now: float, timeout_s: float) -> bool:
        return (now - self.last_heartbeat_at) <= timeout_s


class HealthMonitor:
    """Tracks which Agents are alive based on heartbeat recency."""

    def __init__(self, heartbeat_timeout_s: float = 10.0) -> None:
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self._stations: Dict[str, StationHealth] = {}

    def register(self, station_name: str, now: float) -> StationHealth:
        record = StationHealth(station_name=station_name, registered_at=now, last_heartbeat_at=now)
        self._stations[station_name] = record
        return record

    def record_heartbeat(self, station_name: str, now: float) -> None:
        record = self._stations.get(station_name)
        if record is None:
            record = self.register(station_name, now)
        record.last_heartbeat_at = now
        record.heartbeats_received += 1

    def online_stations(self, now: float) -> List[str]:
        return sorted(
            name
            for name, record in self._stations.items()
            if record.is_online(now, self.heartbeat_timeout_s)
        )

    def offline_stations(self, now: float) -> List[str]:
        return sorted(
            name
            for name, record in self._stations.items()
            if not record.is_online(now, self.heartbeat_timeout_s)
        )

    def is_online(self, station_name: str, now: float) -> bool:
        record = self._stations.get(station_name)
        return record is not None and record.is_online(now, self.heartbeat_timeout_s)

    def heartbeats_received(self, station_name: str) -> int:
        record = self._stations.get(station_name)
        return record.heartbeats_received if record else 0

    def __len__(self) -> int:
        return len(self._stations)


@dataclass
class Hotspot:
    """One detected resource hotspot."""

    station_name: str
    detected_at: float
    metric: str
    value: float
    threshold: float


class HotspotDetector:
    """Flags stations whose reported utilization exceeds configured thresholds."""

    def __init__(
        self,
        memory_threshold: float = 0.85,
        cpu_seconds_rate_threshold: float = 0.8,
    ) -> None:
        self.memory_threshold = memory_threshold
        self.cpu_seconds_rate_threshold = cpu_seconds_rate_threshold
        self.hotspots: List[Hotspot] = []
        #: Optional push hook fired once per detected hotspot, at detection
        #: time.  The sharded/federated managers use it to stream hotspot
        #: sightings into the telemetry rollups instead of re-scanning
        #: ``self.hotspots`` on every read.
        self.on_hotspot: Optional[Callable[[Hotspot], None]] = None
        self._last_cpu_seconds: Dict[str, float] = {}
        self._last_sample_time: Dict[str, float] = {}

    def observe(self, station_name: str, now: float, resources: Dict[str, float]) -> List[Hotspot]:
        """Inspect one heartbeat's resource snapshot; returns new hotspots."""
        found: List[Hotspot] = []
        memory_utilization = resources.get("memory_utilization", 0.0)
        if memory_utilization >= self.memory_threshold:
            found.append(
                Hotspot(
                    station_name=station_name,
                    detected_at=now,
                    metric="memory_utilization",
                    value=memory_utilization,
                    threshold=self.memory_threshold,
                )
            )
        total_cpu = resources.get("total_cpu_seconds", 0.0)
        last_cpu = self._last_cpu_seconds.get(station_name)
        last_time = self._last_sample_time.get(station_name)
        if last_cpu is not None and last_time is not None and now > last_time:
            cpu_rate = (total_cpu - last_cpu) / (now - last_time)
            if cpu_rate >= self.cpu_seconds_rate_threshold:
                found.append(
                    Hotspot(
                        station_name=station_name,
                        detected_at=now,
                        metric="cpu_busy_fraction",
                        value=cpu_rate,
                        threshold=self.cpu_seconds_rate_threshold,
                    )
                )
        self._last_cpu_seconds[station_name] = total_cpu
        self._last_sample_time[station_name] = now
        self.hotspots.extend(found)
        if self.on_hotspot is not None:
            for hotspot in found:
                self.on_hotspot(hotspot)
        return found

    def hotspot_stations(self) -> List[str]:
        """Stations that have ever been flagged (the 'upgrade these' list)."""
        return sorted({hotspot.station_name for hotspot in self.hotspots})

    def recent_hotspots(self, since: float) -> List[Hotspot]:
        return [hotspot for hotspot in self.hotspots if hotspot.detected_at >= since]
