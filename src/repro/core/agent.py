"""The GNF Agent: the lightweight per-station daemon.

Section 3: "A GNF Agent is a lightweight daemon running on the stations
managed by the provider.  It is responsible for the instantiation of the NFs
on the hosting platform, notifying the Manager of clients' (dis)connection
and reporting periodically the state of the device. ...  Apart from starting
and stopping NFs, the Agent is responsible for setting up the containers'
local virtual interfaces.  All containers are connected to the local software
switch by two virtual Ethernet pairs (for ingress/egress traffic,
respectively)."

Concretely, this Agent:

* owns the station's :class:`~repro.containers.runtime.ContainerRuntime`,
* pulls NF images from the central repository when they are not cached,
* creates one container per chain position, wires two veth pairs into the
  station switch and installs the steering flow rules that push the client's
  selected traffic through the chain (and removes them atomically on
  detach),
* watches the station's cells for client (dis)connections and reports them
  to the Manager,
* sends periodic heartbeats with resource, switch and per-NF statistics,
* relays NF notifications to the Manager, and
* checkpoints / restores chains on behalf of the roaming coordinator.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.containers.checkpoint import Checkpoint
from repro.containers.cgroups import AdmissionError, ResourceAccount, ResourceRequest
from repro.containers.container import Container
from repro.containers.runtime import ContainerRuntime, RuntimeTimings
from repro.core.api import AgentHeartbeat, ClientEvent, ControlChannel, NFNotificationMessage
from repro.core.chain import ServiceChain
from repro.core.errors import DeploymentError
from repro.core.policy import TrafficSelector
from repro.core.repository import NFRepository
from repro.netem.addressing import MACAllocator
from repro.netem.flowtable import Action, Match
from repro.netem.host import Interface, VethPair
from repro.netem.packet import Packet
from repro.netem.simulator import PeriodicTask, Simulator
from repro.netem.topology import CHAIN_PRIORITY, EdgeStation
from repro.nfs import create_nf
from repro.nfs.base import Direction, NetworkFunction, NFNotification, ProcessingContext
from repro.telemetry.collector import ResourceCollector
from repro.wireless.cell import Cell
from repro.wireless.client import MobileClient

#: Reference per-core clock the NF ``per_packet_cpu_us`` figures assume.
REFERENCE_CPU_MHZ = 3000.0

_deployment_counter = itertools.count(1)


class DeployedNF:
    """One NF container wired into the station switch via two veth pairs."""

    def __init__(
        self,
        simulator: Simulator,
        station: EdgeStation,
        runtime: ContainerRuntime,
        container: Container,
        nf: NetworkFunction,
        client_ip: str,
        cpu_scale: float,
    ) -> None:
        self.simulator = simulator
        self.station = station
        self.runtime = runtime
        self.container = container
        self.nf = nf
        self.client_ip = client_ip
        self.cpu_scale = cpu_scale
        self.ingress_port: Optional[int] = None
        self.egress_port: Optional[int] = None
        self._egress_container_iface: Optional[Interface] = None
        self.packets_processed = 0
        self.packets_dropped_not_running = 0
        container.network_function = nf

    # --------------------------------------------------------------- wiring

    def wire(self, mac_allocator: MACAllocator) -> None:
        """Create both veth pairs and plug their switch sides into the switch."""
        base = f"{self.container.name}"
        ingress = VethPair(self.simulator, f"{base}-in", mac_allocator.allocate(), mac_allocator.allocate())
        egress = VethPair(self.simulator, f"{base}-out", mac_allocator.allocate(), mac_allocator.allocate())
        ingress_port = self.station.switch.add_port(ingress.end_a, no_flood=True)
        egress_port = self.station.switch.add_port(egress.end_a, no_flood=True)
        ingress.end_b.delivery_override = self._on_ingress
        ingress.end_b.batch_delivery_override = self._on_ingress_batch
        self.ingress_port = ingress_port.number
        self.egress_port = egress_port.number
        self._egress_container_iface = egress.end_b
        self.container.ingress_port = ingress_port.number
        self.container.egress_port = egress_port.number
        self.container.network_namespace.add_interface(ingress.end_b.name)
        self.container.network_namespace.add_interface(egress.end_b.name)

    def unwire(self) -> None:
        """Remove both switch ports (called on teardown/migration)."""
        if self.ingress_port is not None:
            self.station.switch.remove_port(self.ingress_port)
        if self.egress_port is not None:
            self.station.switch.remove_port(self.egress_port)

    # ------------------------------------------------------------ dataplane

    def _on_ingress(self, packet: Packet, _interface: Interface) -> None:
        """Packet steered into the container by a flow rule."""
        if not self.container.is_running:
            self.packets_dropped_not_running += 1
            return
        processing_delay = self.nf.per_packet_cpu_us * 1e-6 * self.cpu_scale
        self.runtime.charge_cpu(self.container.name, processing_delay)
        self.simulator.schedule(processing_delay, self._finish_processing, packet)

    def _finish_processing(self, packet: Packet) -> None:
        if not self.container.is_running or self._egress_container_iface is None:
            self.packets_dropped_not_running += 1
            return
        direction_tag = packet.metadata.get("gnf_dir")
        direction = Direction.DOWNSTREAM if direction_tag == "down" else Direction.UPSTREAM
        context = ProcessingContext(
            now=self.simulator.now,
            direction=direction,
            client_ip=self.client_ip,
            station_name=self.station.name,
        )
        outputs = self.nf.process(packet, context)
        self.packets_processed += 1
        for output in outputs:
            # Re-classify each emitted packet: anything addressed to the client
            # heads downstream, everything else continues upstream.
            heading_down = output.ip is not None and output.ip.dst == self.client_ip
            output.metadata["gnf_dir"] = "down" if heading_down else "up"
            self._egress_container_iface.send(output)

    def _on_ingress_batch(self, packets: List[Packet], _interface: Interface) -> None:
        """A whole burst steered into the container under one simulator event.

        The batch is charged the same aggregate CPU time as per-packet
        processing would be, but the deadline is tracked with a single heap
        entry and the NF sees the burst through ``process_batch``.
        """
        if not self.container.is_running:
            self.packets_dropped_not_running += len(packets)
            return
        processing_delay = self.nf.per_packet_cpu_us * 1e-6 * self.cpu_scale * len(packets)
        self.runtime.charge_cpu(self.container.name, processing_delay)
        self.simulator.schedule(processing_delay, self._finish_processing_batch, packets)

    def _finish_processing_batch(self, packets: List[Packet]) -> None:
        if not self.container.is_running or self._egress_container_iface is None:
            self.packets_dropped_not_running += len(packets)
            return
        upstream: List[Packet] = []
        downstream: List[Packet] = []
        for packet in packets:
            if packet.metadata.get("gnf_dir") == "down":
                downstream.append(packet)
            else:
                upstream.append(packet)
        outputs: List[Packet] = []
        for group, direction in ((upstream, Direction.UPSTREAM), (downstream, Direction.DOWNSTREAM)):
            if not group:
                continue
            context = ProcessingContext(
                now=self.simulator.now,
                direction=direction,
                client_ip=self.client_ip,
                station_name=self.station.name,
            )
            outputs.extend(self.nf.process_batch(group, context))
        self.packets_processed += len(packets)
        for output in outputs:
            heading_down = output.ip is not None and output.ip.dst == self.client_ip
            output.metadata["gnf_dir"] = "down" if heading_down else "up"
        if outputs:
            self._egress_container_iface.send_batch(outputs)

    def describe(self) -> Dict[str, object]:
        description = self.nf.describe()
        description.update(
            {
                "container": self.container.name,
                "container_state": self.container.state.value,
                "client_ip": self.client_ip,
                "packets_processed": self.packets_processed,
            }
        )
        return description


@dataclass
class ChainDeployment:
    """A chain instantiated for one client on this station."""

    assignment_id: str
    client_ip: str
    chain: ServiceChain
    selector: TrafficSelector
    deployed_nfs: List[DeployedNF] = field(default_factory=list)
    requested_at: float = 0.0
    active_at: Optional[float] = None
    rules_installed: bool = False
    #: Steering state requested by the scheduler.  While the deployment is
    #: still booting this is only recorded; it is applied once the chain is
    #: complete, so a disable racing an in-flight deployment can never leave
    #: rules installed for a half-built chain (or vice versa).
    desired_active: bool = True
    #: Set by :meth:`GNFAgent.remove_chain` when the chain is torn down while
    #: still booting: the deploy process rolls back at its next resume
    #: instead of finishing a chain nobody tracks any more (which used to
    #: leak containers and steering rules when a migration fallback
    #: re-deployed the same assignment id in the same tick).
    cancelled: bool = False

    @property
    def cookie(self) -> str:
        return f"chain:{self.assignment_id}"

    @property
    def deploy_latency_s(self) -> Optional[float]:
        if self.active_at is None:
            return None
        return self.active_at - self.requested_at

    def nf_by_type(self, nf_type: str) -> Optional[DeployedNF]:
        for deployed in self.deployed_nfs:
            if deployed.nf.nf_type == nf_type:
                return deployed
        return None


class GNFAgent:
    """The per-station GNF daemon."""

    def __init__(
        self,
        simulator: Simulator,
        station: EdgeStation,
        repository: NFRepository,
        pull_bandwidth_bps: float = 100e6,
        heartbeat_interval_s: float = 2.0,
        collector_interval_s: float = 1.0,
        timings: Optional[RuntimeTimings] = None,
    ) -> None:
        self.simulator = simulator
        self.station = station
        self.repository = repository
        self.heartbeat_interval_s = heartbeat_interval_s
        resources = ResourceAccount(
            cpu_mhz=station.profile.cpu_mhz,
            memory_mb=station.profile.memory_mb,
            system_reserved_mb=min(48.0, station.profile.memory_mb * 0.3),
        )
        self.runtime = ContainerRuntime(
            simulator,
            name=f"{station.name}-runtime",
            resources=resources,
            registry=repository.registry,
            timings=timings or RuntimeTimings.for_station_profile(station.profile.name),
            pull_bandwidth_bps=pull_bandwidth_bps,
        )
        station.runtime = self.runtime
        station.agent = self
        self.cpu_scale = max(0.25, REFERENCE_CPU_MHZ / station.profile.cpu_mhz)
        self.mac_allocator = MACAllocator(prefix=0x06)
        self.deployments: Dict[str, ChainDeployment] = {}
        self.connected_clients: Dict[str, str] = {}  # client_ip -> cell name
        self.collector = ResourceCollector(
            simulator, interval_s=collector_interval_s, name=f"{station.name}-collector"
        )
        self.collector.add_source("resources", self.runtime.utilization)
        self.collector.add_source("switch", lambda: {k: float(v) for k, v in self.station.switch.summary().items()})
        self.collector.add_source("fastpath", self.station.switch.flow_cache.stats)
        self.collector.add_source("flows", self._flow_tracker_metrics)
        self.collector.add_source("cache", self._cache_metrics)
        # Wired to the Manager by GNFManager.register_agent().
        self.control_channel: Optional[ControlChannel] = None
        self._manager_heartbeat_sink: Optional[Callable[[AgentHeartbeat], None]] = None
        self._manager_event_sink: Optional[Callable[[ClientEvent], None]] = None
        self._manager_notification_sink: Optional[Callable[[NFNotificationMessage], None]] = None
        self._heartbeat_task: Optional[PeriodicTask] = None
        self.heartbeats_sent = 0
        self.deployments_completed = 0
        self.deployments_failed = 0

    def _flow_tracker_metrics(self) -> Dict[str, float]:
        """Aggregate flow-tracker statistics across the station's running NFs.

        The collector tick doubles as the station's housekeeping clock:
        idle flows are expired here on every sample, so soak runs stop
        leaking tracker entries and ``flows.expired_flows`` finally moves.
        """
        now = self.simulator.now
        totals: Dict[str, float] = {
            "active_flows": 0.0,
            "total_packets": 0.0,
            "total_bytes": 0.0,
            "expired_flows": 0.0,
            "trackers": 0.0,
        }
        for container in self.runtime.running_containers():
            tracker = getattr(container.network_function, "tracker", None)
            if tracker is None or not hasattr(tracker, "snapshot"):
                continue
            tracker.expire_idle(now)
            totals["trackers"] += 1.0
            for key, value in tracker.snapshot().items():
                totals[key] = totals.get(key, 0.0) + float(value)
        return totals

    def _cache_metrics(self) -> Dict[str, float]:
        """Aggregate edge-cache counters across the station's running NFs.

        Backhaul savings are a per-station property (the paper's motivating
        case for edge caches), so the rollup tree carries them like
        ``flows.*``: every NF exposing cache counters contributes to the
        station's ``cache.*`` sample.
        """
        totals: Dict[str, float] = {
            "caches": 0.0,
            "hits": 0.0,
            "misses": 0.0,
            "evictions": 0.0,
            "expirations": 0.0,
            "admission_rejects": 0.0,
            "bytes_served_from_cache": 0.0,
            "backhaul_bytes_saved": 0.0,
            "objects": 0.0,
        }
        for container in self.runtime.running_containers():
            nf = container.network_function
            if nf is None or not hasattr(nf, "bytes_served_from_cache"):
                continue
            totals["caches"] += 1.0
            totals["hits"] += float(getattr(nf, "hits", 0))
            totals["misses"] += float(getattr(nf, "misses", 0))
            totals["evictions"] += float(getattr(nf, "evictions", 0))
            totals["expirations"] += float(getattr(nf, "expirations", 0))
            totals["admission_rejects"] += float(getattr(nf, "admission_rejects", 0))
            totals["bytes_served_from_cache"] += float(nf.bytes_served_from_cache)
            totals["backhaul_bytes_saved"] += float(getattr(nf, "backhaul_bytes_saved", 0))
            totals["objects"] += float(getattr(nf, "object_count", 0))
        return totals

    # ----------------------------------------------------------- manager link

    def connect_to_manager(
        self,
        channel: ControlChannel,
        heartbeat_sink: Callable[[AgentHeartbeat], None],
        event_sink: Callable[[ClientEvent], None],
        notification_sink: Callable[[NFNotificationMessage], None],
    ) -> None:
        """Attach the control channel and the upstream message senders.

        Each sink is a *sender* that owns its own transport: in the default
        deployment it delivers over ``channel`` as one simulator event per
        message (``ControlChannel.sender``); under a sharded Manager it is a
        ControlBus sink that coalesces messages per delivery tick.  The
        channel itself is kept for the Manager->Agent direction.
        """
        self.control_channel = channel
        self._manager_heartbeat_sink = heartbeat_sink
        self._manager_event_sink = event_sink
        self._manager_notification_sink = notification_sink

    def start(self) -> "GNFAgent":
        """Start heartbeats and telemetry collection."""
        if self._heartbeat_task is None:
            self._heartbeat_task = self.simulator.every(self.heartbeat_interval_s, self.send_heartbeat)
        self.collector.start()
        return self

    def stop(self) -> None:
        if self._heartbeat_task is not None:
            self._heartbeat_task.stop()
            self._heartbeat_task = None
        self.collector.stop()

    @property
    def is_running(self) -> bool:
        """Whether the daemon is up (the fault injector stops it on a
        station crash and restarts it on recovery)."""
        return self._heartbeat_task is not None

    # -------------------------------------------------------------- cells

    def watch_cell(self, cell: Cell) -> None:
        """Subscribe to a cell's association events (client connect/disconnect)."""
        cell.on_association(self._on_client_connected)
        cell.on_disassociation(self._on_client_disconnected)

    def _on_client_connected(self, client: MobileClient, cell: Cell) -> None:
        self.connected_clients[client.ip] = cell.name
        self._send_client_event(client, cell, "connected")

    def _on_client_disconnected(self, client: MobileClient, cell: Cell) -> None:
        self.connected_clients.pop(client.ip, None)
        self._send_client_event(client, cell, "disconnected")

    def _send_client_event(self, client: MobileClient, cell: Cell, event: str) -> None:
        if self._manager_event_sink is None:
            return
        message = ClientEvent(
            station_name=self.station.name,
            client_ip=client.ip,
            client_name=client.name,
            cell_name=cell.name,
            event=event,
            time=self.simulator.now,
        )
        self._manager_event_sink(message)

    # ---------------------------------------------------------- deployment

    def deploy_chain(
        self,
        assignment_id: str,
        client_ip: str,
        chain: ServiceChain,
        selector: Optional[TrafficSelector] = None,
        nf_states: Optional[Sequence[Dict[str, object]]] = None,
        on_complete: Optional[Callable[[ChainDeployment, bool, str], None]] = None,
        install_steering: bool = True,
    ) -> ChainDeployment:
        """Instantiate a chain for a client's selected traffic.

        The deployment runs as a simulated process (image pulls, container
        boots).  ``on_complete(deployment, success, detail)`` fires when the
        chain is active (steering rules installed) or when it failed.

        ``install_steering=False`` boots the containers without any flow
        rules: that is how a split embedding's *remote* segments deploy --
        the client is not attached to this station, so the segment must not
        claim the station's cell/uplink steering for that client's traffic.
        """
        deployment = ChainDeployment(
            assignment_id=assignment_id,
            client_ip=client_ip,
            chain=chain,
            selector=selector or TrafficSelector.all_traffic(),
            requested_at=self.simulator.now,
            desired_active=install_steering,
        )
        self.deployments[assignment_id] = deployment
        self.simulator.process(
            self._deploy_process(deployment, list(nf_states or []), on_complete),
            name=f"deploy-{assignment_id}",
        )
        return deployment

    def _deploy_process(
        self,
        deployment: ChainDeployment,
        nf_states: List[Dict[str, object]],
        on_complete: Optional[Callable[[ChainDeployment, bool, str], None]],
    ):
        try:
            for index, spec in enumerate(deployment.chain.specs):
                entry = self.repository.lookup(spec.nf_type)
                image, pull_time = self.runtime.ensure_image(entry.image_reference)
                if pull_time > 0:
                    yield pull_time
                if deployment.cancelled:
                    raise DeploymentError("deployment cancelled")
                container_name = (
                    f"{deployment.assignment_id}-{spec.nf_type}-{index}"
                    f"-{next(_deployment_counter):04d}"
                )
                # A declared per-NF memory demand overrides the image's
                # default sizing, so the runtime admits exactly what the
                # placement engine budgeted for this NF.
                requirements = spec.requirements
                request = None
                if requirements is not None and requirements.memory_mb is not None:
                    request = ResourceRequest(
                        memory_mb=requirements.memory_mb
                        + self.runtime.per_container_overhead_mb,
                        cpu_shares=image.default_cpu_shares,
                    )
                container = self.runtime.create(
                    image,
                    name=container_name,
                    request=request,
                    labels={
                        "client": deployment.client_ip,
                        "assignment": deployment.assignment_id,
                        "nf_type": spec.nf_type,
                    },
                )
                config = dict(entry.default_config)
                config.update(spec.config)
                nf = create_nf(entry.nf_class, name=spec.instance_name or container_name, **config)
                if index < len(nf_states) and nf_states[index]:
                    nf.import_state(nf_states[index])
                nf.notification_sink = self._relay_nf_notification
                deployed = DeployedNF(
                    simulator=self.simulator,
                    station=self.station,
                    runtime=self.runtime,
                    container=container,
                    nf=nf,
                    client_ip=deployment.client_ip,
                    cpu_scale=self.cpu_scale,
                )
                # Track the NF before the boot yield so a cancellation (or a
                # failure) mid-boot rolls this container back too.
                deployment.deployed_nfs.append(deployed)
                boot_time = self.runtime.start(container)
                yield boot_time
                if deployment.cancelled:
                    raise DeploymentError("deployment cancelled")
                deployed.wire(self.mac_allocator)
        except (AdmissionError, DeploymentError, KeyError) as error:
            self._rollback(deployment)
            self.deployments_failed += 1
            if on_complete is not None:
                on_complete(deployment, False, str(error))
            return

        # Honour the steering state the scheduler last asked for: a disable
        # that raced the deployment leaves the chain booted but unsteered.
        if deployment.desired_active:
            self.install_chain_rules(deployment)
        deployment.active_at = self.simulator.now
        self.deployments_completed += 1
        if on_complete is not None:
            on_complete(deployment, True, "deployed")

    def _rollback(self, deployment: ChainDeployment) -> None:
        """Undo a partially completed deployment."""
        self.remove_chain_rules(deployment)
        for deployed in deployment.deployed_nfs:
            deployed.unwire()
            if not deployed.container.is_terminal:
                self.runtime.stop(deployed.container)
        deployment.deployed_nfs.clear()
        # A cancelled deployment may already have been replaced under the
        # same assignment id (migration fallback): only drop the table entry
        # if it is still this very deployment.
        if self.deployments.get(deployment.assignment_id) is deployment:
            self.deployments.pop(deployment.assignment_id, None)
        self.flush_client_flows(deployment.client_ip)

    # ----------------------------------------------------------- flow rules

    def install_chain_rules(self, deployment: ChainDeployment) -> None:
        """Install the steering rules pushing the client's traffic through the chain."""
        if deployment.rules_installed or not deployment.deployed_nfs:
            return
        flow_table = self.station.switch.flow_table
        cookie = deployment.cookie
        selector = deployment.selector
        client_ip = deployment.client_ip
        chain = deployment.deployed_nfs
        first, last = chain[0], chain[-1]
        assert self.station.uplink_port is not None

        # Upstream entry: client traffic arriving from any cell port.
        for cell_port in self.station.cell_ports.values():
            flow_table.add(
                priority=CHAIN_PRIORITY,
                match=selector.upstream_match(client_ip, in_port=cell_port),
                actions=[Action.set_metadata("gnf_dir", "up"), Action.output(first.ingress_port)],
                cookie=cookie,
            )
        # Upstream continuation: from each NF's egress to the next NF / the uplink.
        for index, deployed in enumerate(chain):
            next_port = (
                chain[index + 1].ingress_port if index + 1 < len(chain) else self.station.uplink_port
            )
            flow_table.add(
                priority=CHAIN_PRIORITY,
                match=Match(in_port=deployed.egress_port, metadata=(("gnf_dir", "up"),)),
                actions=[Action.output(next_port)],
                cookie=cookie,
            )
        # Downstream entry: traffic for the client arriving from the uplink
        # enters the chain at the last NF (reverse traversal).
        flow_table.add(
            priority=CHAIN_PRIORITY,
            match=selector.downstream_match(client_ip, in_port=self.station.uplink_port),
            actions=[Action.set_metadata("gnf_dir", "down"), Action.output(last.ingress_port)],
            cookie=cookie,
        )
        # Downstream continuation towards the first NF; after the first NF the
        # packet falls through to the client's association rule.
        for index in range(len(chain) - 1, 0, -1):
            flow_table.add(
                priority=CHAIN_PRIORITY,
                match=Match(in_port=chain[index].egress_port, metadata=(("gnf_dir", "down"),)),
                actions=[Action.output(chain[index - 1].ingress_port)],
                cookie=cookie,
            )
        deployment.rules_installed = True

    def remove_chain_rules(self, deployment: ChainDeployment) -> int:
        """Remove every steering rule belonging to a deployment.

        The rule removal bumps the flow-table generation, so every cached
        fast-path verdict on this switch self-invalidates; the client's own
        entries are additionally flushed eagerly so no packet already keyed
        into the cache can be replayed against the torn-down chain.
        """
        removed = self.station.switch.flow_table.remove_by_cookie(deployment.cookie)
        deployment.rules_installed = False
        if removed:
            self.flush_client_flows(deployment.client_ip)
        return removed

    def flush_client_flows(self, client_ip: str) -> int:
        """Drop every fast-path cache entry touching ``client_ip``.

        Called on chain teardown and by the roaming coordinator after a
        migration: a stale cached verdict must never keep steering a roamed
        client's traffic into the old station's (now removed) chain.
        """
        return self.station.switch.flow_cache.flush_ip(client_ip)

    def set_chain_active(self, assignment_id: str, active: bool) -> bool:
        """Enable/disable steering without touching the containers (scheduler path)."""
        deployment = self.deployments.get(assignment_id)
        if deployment is None:
            return False
        deployment.desired_active = active
        if deployment.active_at is None:
            # Deployment still in flight: the request is recorded and applied
            # by _deploy_process when the last container is wired, so rules
            # are never installed against a partially built chain.
            return True
        if active and not deployment.rules_installed:
            self.install_chain_rules(deployment)
        elif not active and deployment.rules_installed:
            self.remove_chain_rules(deployment)
        return True

    # ------------------------------------------------------------- upgrades

    def suspend_chain(
        self,
        assignment_id: str,
        on_suspended: Optional[Callable[[float], None]] = None,
    ) -> bool:
        """Pull a chain's steering rules without touching its containers.

        Used by the stateful bundle-upgrade path: the coverage gap starts
        here (no rules means the client's traffic bypasses the chain) and
        ends when :meth:`cutover_chain` installs the replacement's rules.
        ``on_suspended`` receives the gap-start timestamp synchronously.
        """
        deployment = self.deployments.get(assignment_id)
        if deployment is None or deployment.active_at is None:
            return False
        self.remove_chain_rules(deployment)
        if on_suspended is not None:
            on_suspended(self.simulator.now)
        return True

    def cutover_chain(
        self,
        assignment_id: str,
        staged_id: str,
        final_states: Optional[Sequence[Dict[str, object]]] = None,
        desired_active: bool = True,
        on_done: Optional[Callable[[bool, str], None]] = None,
    ) -> bool:
        """Atomically replace a chain with a fully booted staged replacement.

        The staged deployment (booted unsteered under ``staged_id``) absorbs
        ``final_states``, the old chain is torn down, and the replacement is
        re-keyed to ``assignment_id`` with its steering installed in the same
        simulator event -- so a packet arriving at any instant sees either
        the old rules or the new ones, never neither (zero coverage gap).
        If the staged chain is missing, still booting, cancelled, or lost a
        container (station crash mid-upgrade), nothing is touched and the
        cutover reports failure: the upgrade orchestrator retries rather
        than half-cutting-over.
        """
        staged = self.deployments.get(staged_id)
        ready = (
            staged is not None
            and staged.active_at is not None
            and not staged.cancelled
            and bool(staged.deployed_nfs)
            and all(deployed.container.is_running for deployed in staged.deployed_nfs)
        )
        if not ready:
            if on_done is not None:
                on_done(False, "staged chain not ready")
            return False
        assert staged is not None
        for index, deployed in enumerate(staged.deployed_nfs):
            if final_states and index < len(final_states) and final_states[index]:
                deployed.nf.import_state(dict(final_states[index]))
        old = self.deployments.get(assignment_id)
        if old is not None and old is not staged:
            self.remove_chain(assignment_id)
        self.deployments.pop(staged_id, None)
        staged.assignment_id = assignment_id
        staged.desired_active = desired_active
        self.deployments[assignment_id] = staged
        if desired_active:
            self.install_chain_rules(staged)
        elif staged.rules_installed:
            self.remove_chain_rules(staged)
        if on_done is not None:
            on_done(True, "cut-over")
        return True

    # -------------------------------------------------------------- removal

    def remove_chain(
        self,
        assignment_id: str,
        on_complete: Optional[Callable[[str], None]] = None,
    ) -> float:
        """Tear down a deployment; returns the estimated teardown duration."""
        deployment = self.deployments.pop(assignment_id, None)
        if deployment is None:
            if on_complete is not None:
                self.simulator.schedule(0.0, on_complete, assignment_id)
            return 0.0
        if deployment.active_at is None:
            # Still booting: flag it and let the deploy process roll back the
            # containers at its next resume (it owns the in-flight boot).
            deployment.cancelled = True
            if on_complete is not None:
                self.simulator.schedule(0.0, on_complete, assignment_id)
            return 0.0
        self.remove_chain_rules(deployment)
        longest_stop = 0.0
        for deployed in deployment.deployed_nfs:
            deployed.unwire()
            if not deployed.container.is_terminal:
                longest_stop = max(longest_stop, self.runtime.stop(deployed.container))
        if on_complete is not None:
            self.simulator.schedule(longest_stop, on_complete, assignment_id)
        return longest_stop

    # --------------------------------------------------- checkpoint/restore

    def export_chain_state(self, assignment_id: str) -> List[Dict[str, object]]:
        """Snapshot every NF's exported state (used by stateful/pre-copy migration)."""
        deployment = self.deployments.get(assignment_id)
        if deployment is None:
            return []
        return [deployed.nf.export_state() for deployed in deployment.deployed_nfs]

    def checkpoint_chain(self, assignment_id: str) -> Tuple[List[Checkpoint], float]:
        """Checkpoint every container of a deployment; returns (checkpoints, duration)."""
        deployment = self.deployments.get(assignment_id)
        if deployment is None:
            return [], 0.0
        checkpoints: List[Checkpoint] = []
        total_duration = 0.0
        for deployed in deployment.deployed_nfs:
            if not deployed.container.is_running:
                continue
            checkpoint, duration = self.runtime.checkpoint(deployed.container)
            checkpoints.append(checkpoint)
            total_duration += duration
        return checkpoints, total_duration

    # ------------------------------------------------------------ telemetry

    def send_heartbeat(self) -> None:
        """Build and send the periodic station report."""
        if self._manager_heartbeat_sink is None:
            return
        nf_stats: Dict[str, Dict[str, object]] = {}
        for deployment in self.deployments.values():
            for deployed in deployment.deployed_nfs:
                nf_stats[deployed.nf.name] = deployed.describe()
        heartbeat = AgentHeartbeat(
            station_name=self.station.name,
            time=self.simulator.now,
            resources=self.runtime.utilization(),
            switch={key: float(value) for key, value in self.station.switch.summary().items()},
            nf_stats=nf_stats,
            connected_clients=sorted(self.connected_clients),
            cache=self._cache_metrics(),
        )
        self.heartbeats_sent += 1
        self._manager_heartbeat_sink(heartbeat)

    def _relay_nf_notification(self, notification: NFNotification) -> None:
        """Immediately forward an NF notification to the Manager."""
        if self._manager_notification_sink is None:
            return
        message = NFNotificationMessage(
            station_name=self.station.name,
            nf_name=notification.nf_name,
            severity=notification.severity,
            message=notification.message,
            time=notification.time,
            details=dict(notification.details),
        )
        self._manager_notification_sink(message)

    # --------------------------------------------------------------- status

    def deployment_for_client(self, client_ip: str) -> Optional[ChainDeployment]:
        for deployment in self.deployments.values():
            if deployment.client_ip == client_ip:
                return deployment
        return None

    def status(self) -> Dict[str, object]:
        """Local status document (also used by the UI's station view)."""
        return {
            "station": self.station.name,
            "profile": self.station.profile.name,
            "resources": self.runtime.utilization(),
            "switch": self.station.switch.summary(),
            "fastpath": self.station.switch.flow_cache.stats(),
            "deployments": {
                assignment_id: {
                    "client": deployment.client_ip,
                    "chain": deployment.chain.nf_types,
                    "active": deployment.rules_installed,
                    "deploy_latency_s": deployment.deploy_latency_s,
                }
                for assignment_id, deployment in self.deployments.items()
            },
            "connected_clients": sorted(self.connected_clients),
            "heartbeats_sent": self.heartbeats_sent,
        }
