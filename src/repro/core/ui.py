"""The GNF User Interface.

Section 3: "The UI provides the overall management interface for the system
through a direct connection to the Manager's API.  Using a simple interface,
the entire network health, status, and notifications can be monitored,
including the number of online stations, connected clients, enabled NFs, and
current processing and network resource consumption.  New NFs can be
attached in seconds or removed from clients as well as scheduled to be
enabled only during specific time periods."

:class:`GNFDashboard` is that interface: a thin, read-mostly facade over the
Manager plus the attach/remove/schedule operations, with plain-text renderers
(the reproduction's stand-in for the demo's web UI) that examples and
benchmarks print.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.chain import ServiceChain
from repro.core.manager import Assignment, AssignmentState, GNFManager
from repro.core.policy import TrafficSelector
from repro.core.scheduler import TimeSchedule
from repro.telemetry.export import render_table


class GNFDashboard:
    """Operator-facing view of the whole GNF deployment."""

    def __init__(self, manager: GNFManager) -> None:
        self.manager = manager

    # ------------------------------------------------------------- overview

    def overview(self) -> Dict[str, object]:
        """Network-wide health: stations, clients, NFs, hotspots, notifications."""
        return self.manager.overview()

    def nf_catalog(self) -> List[Dict[str, object]]:
        """The NF types an operator can deploy."""
        return self.manager.repository.describe()

    def stations(self) -> List[Dict[str, object]]:
        """One row per station: liveness, resources, NF count, clients."""
        now = self.manager.simulator.now
        rows: List[Dict[str, object]] = []
        for station_name, agent in sorted(self.manager.agents.items()):
            resources = agent.runtime.utilization()
            rows.append(
                {
                    "station": station_name,
                    "online": self.manager.health.is_online(station_name, now),
                    "profile": agent.station.profile.name,
                    "containers_running": int(resources.get("containers_running", 0)),
                    "memory_utilization": round(float(resources.get("memory_utilization", 0.0)), 3),
                    "free_memory_mb": round(float(resources.get("free_memory_mb", 0.0)), 1),
                    "connected_clients": len(agent.connected_clients),
                    "hotspot": station_name in self.manager.hotspots.hotspot_stations(),
                }
            )
        return rows

    def station_view(self, station_name: str) -> Dict[str, object]:
        """Detailed per-station view (the demo UI's drill-down page)."""
        agent = self.manager.agent(station_name)
        return agent.status()

    def clients(self) -> List[Dict[str, object]]:
        """One row per known client: location and assigned NFs."""
        rows: List[Dict[str, object]] = []
        for client_ip, station_name in sorted(self.manager.client_locations.items()):
            assignments = self.manager.assignments_for_client(client_ip)
            rows.append(
                {
                    "client_ip": client_ip,
                    "client_name": self.manager.client_names.get(client_ip, ""),
                    "station": station_name,
                    "assignments": len(assignments),
                    "nfs": sorted({nf for a in assignments for nf in a.chain.nf_types}),
                    "migrations": sum(a.migrations for a in assignments),
                }
            )
        return rows

    def client_view(self, client_ip: str) -> Dict[str, object]:
        """Everything the operator sees about one client."""
        assignments = self.manager.assignments_for_client(client_ip)
        return {
            "client_ip": client_ip,
            "client_name": self.manager.client_names.get(client_ip, ""),
            "station": self.manager.client_locations.get(client_ip),
            "assignments": [
                {
                    "assignment_id": assignment.assignment_id,
                    "chain": assignment.chain.nf_types,
                    "selector": assignment.selector.description,
                    "state": assignment.state.value,
                    "station": assignment.station_name,
                    "station_history": list(assignment.station_history),
                    "attach_latency_s": assignment.attach_latency_s,
                    "migrations": assignment.migrations,
                }
                for assignment in assignments
            ],
        }

    def notifications(self, minimum_severity: str = "info", limit: int = 50) -> List[Dict[str, object]]:
        """The newest notifications at or above a severity."""
        selected = self.manager.notifications.by_severity(minimum_severity)[-limit:]
        return [
            {
                "time": notification.received_at,
                "station": notification.station_name,
                "nf": notification.nf_name,
                "severity": notification.severity,
                "message": notification.message,
            }
            for notification in selected
        ]

    # ------------------------------------------------------------ operations

    def attach_nf(
        self,
        client_ip: str,
        nf_type: str,
        config: Optional[Dict[str, object]] = None,
        selector: Optional[TrafficSelector] = None,
        schedule: Optional[TimeSchedule] = None,
    ) -> Assignment:
        """Attach one NF to a client (the demo's "assign NF" button)."""
        return self.manager.attach_nf(client_ip, nf_type, config=config, selector=selector, schedule=schedule)

    def attach_chain(
        self,
        client_ip: str,
        chain: ServiceChain,
        selector: Optional[TrafficSelector] = None,
        schedule: Optional[TimeSchedule] = None,
    ) -> Assignment:
        """Attach a chain of NFs to a client."""
        return self.manager.attach_chain(client_ip, chain, selector=selector, schedule=schedule)

    def remove_assignment(self, assignment_id: str) -> Assignment:
        """Remove a previously attached NF/chain."""
        return self.manager.detach(assignment_id)

    def schedule_nf(
        self,
        client_ip: str,
        nf_type: str,
        start_s: float,
        end_s: float,
        config: Optional[Dict[str, object]] = None,
    ) -> Assignment:
        """Attach an NF that is only enabled during a specific time period."""
        return self.manager.attach_nf(
            client_ip, nf_type, config=config, schedule=TimeSchedule.between(start_s, end_s)
        )

    # -------------------------------------------------------------- renders

    def render_overview(self) -> str:
        """Plain-text landing page."""
        overview = self.overview()
        # A federated manager reports ``connected_clients`` as a directory
        # *count*; the single-region managers report the sorted ip list.
        connected = overview["connected_clients"]
        rows = [
            ["online stations", len(overview["online_stations"])],
            ["connected clients", connected if isinstance(connected, int) else len(connected)],
            ["active assignments", overview["active_assignments"]],
            ["enabled NFs", overview["enabled_nfs"]],
            ["hotspot stations", len(overview["hotspot_stations"])],
            ["notifications", sum(overview["notifications"].values())],
        ]
        return render_table(["metric", "value"], rows, title="GNF network overview")

    def render_stations(self) -> str:
        """Plain-text station table."""
        rows = [
            [
                row["station"],
                row["online"],
                row["profile"],
                row["containers_running"],
                row["memory_utilization"],
                row["connected_clients"],
                row["hotspot"],
            ]
            for row in self.stations()
        ]
        return render_table(
            ["station", "online", "profile", "NFs", "mem util", "clients", "hotspot"],
            rows,
            title="GNF stations",
        )

    def render_clients(self) -> str:
        """Plain-text client table."""
        rows = [
            [
                row["client_ip"],
                row["client_name"],
                row["station"],
                ",".join(row["nfs"]) or "-",
                row["migrations"],
            ]
            for row in self.clients()
        ]
        return render_table(
            ["client", "name", "station", "NFs", "migrations"], rows, title="GNF clients"
        )
