"""Chaos-style fault injection against a running testbed.

The :class:`FaultInjector` turns declarative :class:`~repro.scenarios.spec.FaultSpec`
entries into concrete actions on a :class:`~repro.core.testbed.GNFTestbed`:

* ``station-crash`` -- the station's cells stop beaconing (clients roam away
  on their next scan, which is what triggers NF migration), its uplink goes
  down, every running container is killed and the agent falls silent (the
  Manager's health monitor marks it offline).  Recovery restores all four.
* ``link-degrade`` -- the station's uplink loses packets and/or drops to a
  fraction of its bandwidth.
* ``link-down`` -- the uplink is administratively down.
* ``container-oom`` -- one running NF container on the station is OOM-killed
  (chosen by the injector's seeded RNG).

Every applied fault is recorded in :attr:`FaultInjector.applied` (fed into
the run's :class:`~repro.scenarios.digest.MetricsDigest`) and surfaced as a
``critical`` provider notification so operators see it in the UI/telemetry.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.notifications import ProviderNotification
from repro.scenarios.spec import FaultSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.testbed import GNFTestbed


class FaultInjector:
    """Schedules and applies a scenario's fault plan."""

    def __init__(self, testbed: "GNFTestbed", rng: Optional[random.Random] = None) -> None:
        self.testbed = testbed
        self.simulator = testbed.simulator
        self._rng = rng or random.Random(0)
        #: Chronological log of everything that was actually done.
        self.applied: List[Dict[str, object]] = []
        # Saved uplink parameters for in-flight degradations, keyed by station.
        self._degraded: Dict[str, Dict[str, float]] = {}
        # Outstanding inject/recover events, cancellable at teardown.
        self._events: List[object] = []
        # Overlapping faults on one station are reference-counted so the
        # recovery of one never undoes another that is still active: the
        # uplink stays down while any crash/link-down holds it, the station
        # stays crashed while any crash holds it, and degradation persists
        # until the last degrade recovers.
        self._uplink_holds: Dict[str, int] = {}
        self._crash_holds: Dict[str, int] = {}
        self._degrade_holds: Dict[str, int] = {}

    # ------------------------------------------------------------ scheduling

    def schedule(self, fault: FaultSpec) -> None:
        """Schedule one fault (and its recovery) at its spec'd times."""
        fault.validate()
        station = fault.station_name()
        if station not in self.testbed.topology.stations:
            raise KeyError(f"fault targets unknown station {station!r}")
        self._events.append(self.simulator.schedule(fault.at_s, self._apply, fault, station))
        if fault.duration_s is not None and fault.kind != "container-oom":
            self._events.append(
                self.simulator.schedule(fault.at_s + fault.duration_s, self._recover, fault, station)
            )

    def schedule_all(self, faults: List[FaultSpec]) -> None:
        for fault in faults:
            self.schedule(fault)

    def cancel_pending(self) -> int:
        """Cancel faults (and recoveries) that have not fired yet.

        Called at scenario teardown: a recovery firing after the testbed was
        stopped would restart the agent's periodic tasks and the queue would
        never drain.  Returns the number of events cancelled.
        """
        cancelled = 0
        for event in self._events:
            if event.pending:
                event.cancel()
                cancelled += 1
        self._events.clear()
        return cancelled

    # -------------------------------------------------------------- applying

    #: Fault kinds whose window is a packet-fidelity island for the hybrid
    #: core: fluid flows through the station are demoted while it is open,
    #: so faulty links and crashed stations always see real packets.
    _ISLAND_KINDS = ("station-crash", "link-degrade", "link-down")

    def _apply(self, fault: FaultSpec, station: str) -> None:
        detail: Dict[str, object] = {}
        if fault.kind in self._ISLAND_KINDS:
            self.testbed.hybrid.enter_fault_island(station)
        if fault.kind == "station-crash":
            detail = self._crash_station(station)
        elif fault.kind == "link-degrade":
            detail = self._degrade_link(station, fault.params)
        elif fault.kind == "link-down":
            self._hold_uplink(station)
        elif fault.kind == "container-oom":
            detail = self._oom_kill(station)
        self._log("inject", fault, station, detail)

    def _recover(self, fault: FaultSpec, station: str) -> None:
        if fault.kind == "station-crash":
            self._restore_station(station)
        elif fault.kind == "link-degrade":
            self._restore_link(station)
        elif fault.kind == "link-down":
            self._release_uplink(station)
        if fault.kind in self._ISLAND_KINDS:
            self.testbed.hybrid.exit_fault_island(station)
        self._log("recover", fault, station, {})

    # -------------------------------------------------- overlap refcounting

    def _hold_uplink(self, station: str) -> None:
        holds = self._uplink_holds.get(station, 0)
        self._uplink_holds[station] = holds + 1
        if holds == 0:
            self.testbed.topology.uplink_links[station].set_up(False)

    def _release_uplink(self, station: str) -> None:
        holds = self._uplink_holds.get(station, 0) - 1
        self._uplink_holds[station] = max(0, holds)
        if holds == 0:
            self.testbed.topology.uplink_links[station].set_up(True)

    # ------------------------------------------------------------ primitives

    def _cells_of(self, station: str):
        return [cell for cell in self.testbed.cells.values() if cell.station_name == station]

    def _crash_station(self, station: str) -> Dict[str, object]:
        agent = self.testbed.agents[station]
        crash_holds = self._crash_holds.get(station, 0)
        self._crash_holds[station] = crash_holds + 1
        self._hold_uplink(station)
        killed = 0
        if crash_holds == 0:
            for cell in self._cells_of(station):
                cell.set_enabled(False)
            for container in list(agent.runtime.running_containers()):
                agent.runtime.fail(container, "station-crash")
                killed += 1
            agent.stop()
        return {"containers_killed": killed}

    def _restore_station(self, station: str) -> None:
        crash_holds = self._crash_holds.get(station, 0) - 1
        self._crash_holds[station] = max(0, crash_holds)
        self._release_uplink(station)
        if crash_holds == 0:
            agent = self.testbed.agents[station]
            for cell in self._cells_of(station):
                cell.set_enabled(True)
            agent.start()

    def _degrade_link(self, station: str, params: Dict[str, object]) -> Dict[str, object]:
        link = self.testbed.topology.uplink_links[station]
        self._degrade_holds[station] = self._degrade_holds.get(station, 0) + 1
        if station not in self._degraded:
            self._degraded[station] = {
                "bandwidth_bps": link.bandwidth_bps,
                "loss_rate": link.loss_rate,
            }
        factor = float(params.get("bandwidth_factor", 0.1))
        loss = float(params.get("loss_rate", 0.05))
        link.bandwidth_bps = max(1.0, self._degraded[station]["bandwidth_bps"] * factor)
        link.loss_rate = min(0.99, max(0.0, loss))
        return {"bandwidth_factor": factor, "loss_rate": loss}

    def _restore_link(self, station: str) -> None:
        holds = self._degrade_holds.get(station, 0) - 1
        self._degrade_holds[station] = max(0, holds)
        if holds > 0:
            return
        saved = self._degraded.pop(station, None)
        if saved is None:
            return
        link = self.testbed.topology.uplink_links[station]
        link.bandwidth_bps = saved["bandwidth_bps"]
        link.loss_rate = saved["loss_rate"]

    def _oom_kill(self, station: str) -> Dict[str, object]:
        agent = self.testbed.agents[station]
        running = sorted(agent.runtime.running_containers(), key=lambda c: c.name)
        # Only NF containers carry an assignment label; never kill nothing loudly.
        candidates = [c for c in running if "assignment" in c.labels] or running
        if not candidates:
            return {"containers_killed": 0}
        victim = self._rng.choice(candidates)
        agent.runtime.fail(victim, "oom-kill")
        return {"containers_killed": 1, "nf_type": victim.labels.get("nf_type", "")}

    # -------------------------------------------------------------- logging

    def _log(self, phase: str, fault: FaultSpec, station: str, detail: Dict[str, object]) -> None:
        entry: Dict[str, object] = {
            "phase": phase,
            "kind": fault.kind,
            "station": station,
            "time": self.simulator.now,
        }
        entry.update(detail)
        self.applied.append(entry)
        self.testbed.manager.notifications.publish(
            ProviderNotification(
                received_at=self.simulator.now,
                raised_at=self.simulator.now,
                station_name=station,
                nf_name="fault-injector",
                severity="critical" if phase == "inject" else "info",
                message=f"{fault.kind} {phase} at {station}",
                details=dict(detail),
            )
        )

    def summary(self) -> Dict[str, float]:
        injected = [entry for entry in self.applied if entry["phase"] == "inject"]
        counts: Dict[str, float] = {"faults_injected": float(len(injected))}
        for entry in injected:
            key = f"faults_{entry['kind']}"
            counts[key] = counts.get(key, 0.0) + 1.0
        return counts
