"""The canned scenario library.

Each canned scenario is a *builder*: a function taking the master ``seed``
and returning a fully validated :class:`~repro.scenarios.spec.ScenarioSpec`.
Builders draw any structural randomness (fleet speeds, fault times...) from
RNGs derived from that seed, so ``build_scenario(name, seed)`` is itself
deterministic and the whole run replays byte-for-byte.

Register new scenarios with the :func:`register_scenario` decorator::

    @register_scenario("my-scenario")
    def _my_scenario(seed: int) -> ScenarioSpec:
        return ScenarioSpec(name="my-scenario", seed=seed, ...)

and they become available to ``scenario_names()`` / ``run_scenario()`` /
``examples/run_scenario.py`` and the CI smoke matrix automatically.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.core.seeds import derive_seed
from repro.scenarios.runner import ScenarioResult, ScenarioRunner
from repro.scenarios.spec import (
    BundleAssignmentSpec,
    BundleUpgradeSpec,
    ChainAssignmentSpec,
    ClientFleetSpec,
    FaultSpec,
    MobilitySpec,
    ScenarioSpec,
    TopologySpec,
    TrafficEraSpec,
    WorkloadSpec,
)

ScenarioBuilder = Callable[[int], ScenarioSpec]

_REGISTRY: Dict[str, ScenarioBuilder] = {}


def register_scenario(name: str) -> Callable[[ScenarioBuilder], ScenarioBuilder]:
    """Register the decorated builder under ``name`` in the scenario registry."""

    def decorator(builder: ScenarioBuilder) -> ScenarioBuilder:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} is already registered")
        _REGISTRY[name] = builder
        return builder

    return decorator


def scenario_names() -> List[str]:
    return sorted(_REGISTRY)


def build_scenario(name: str, seed: int = 0) -> ScenarioSpec:
    """Build (and validate) a canned scenario's spec for ``seed``."""
    try:
        builder = _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(f"unknown scenario {name!r}; available: {scenario_names()}") from exc
    return builder(seed).validate()


def run_scenario(
    name: str,
    seed: int = 0,
    shard_count: Optional[int] = None,
    migration_strategy: Optional[str] = None,
    placement_strategy: Optional[str] = None,
    simulation_mode: Optional[str] = None,
    region_count: Optional[int] = None,
) -> ScenarioResult:
    """Build and run a canned scenario in one call.

    ``shard_count`` overrides the control-plane shard count (None keeps the
    spec's own setting); the digest is identical for any value.
    ``migration_strategy`` overrides the topology's migration strategy, so
    any canned scenario can be replayed cold/stateful/precopy.
    ``placement_strategy`` overrides the placement strategy name the same
    way (``closest-agent``/``least-loaded``/``latency-weighted``/
    ``bin-packing``/...), which is how benchmark E11 ablates placement.
    ``simulation_mode`` overrides the topology's ``packet``/``hybrid``
    engine selection; scenarios without bulk workloads (see
    :func:`scenario_has_bulk`) digest identically under either mode.
    ``region_count`` overrides the federation region count (shard_count then
    means shards *per region*); the digest is identical for any value.
    """
    return ScenarioRunner(build_scenario(name, seed)).run(
        shard_count=shard_count,
        migration_strategy=migration_strategy,
        placement_strategy=placement_strategy,
        simulation_mode=simulation_mode,
        region_count=region_count,
    )


def scenario_has_bulk(spec: ScenarioSpec) -> bool:
    """True when any fleet carries a ``bulk`` workload.

    Bulk transfers are the only traffic the hybrid core may lift into the
    fluid regime, so scenarios *without* them are digest-identical across
    ``simulation_mode`` -- the cross-mode equivalence tests use this to
    decide which canned scenarios to compare.
    """
    return any(
        workload.kind == "bulk" for fleet in spec.fleets for workload in fleet.workloads
    )


def _builder_rng(seed: int, name: str) -> random.Random:
    """RNG for a builder's structural choices, derived from the master seed."""
    return random.Random(derive_seed(seed, "builder", name))


# ---------------------------------------------------------------------------
# The canned scenarios
# ---------------------------------------------------------------------------


@register_scenario("fig2-roaming")
def _fig2_roaming(seed: int) -> ScenarioSpec:
    """The paper's Fig. 2 demo: one smartphone walks to the other network."""
    return ScenarioSpec(
        name="fig2-roaming",
        description=(
            "A smartphone browsing the web behind a firewall + HTTP filter + "
            "DNS load balancer walks from station-1's cell to station-2's; "
            "its NFs migrate with it and keep enforcing policy."
        ),
        seed=seed,
        duration_s=75.0,
        topology=TopologySpec(station_count=2, station_spacing_m=80.0, migration_strategy="cold"),
        fleets=[
            ClientFleetSpec(
                name="smartphone",
                count=1,
                position=(0.0, 0.0),
                mobility=MobilitySpec(
                    model="linear",
                    start_s=19.0,
                    params={"velocity_mps": (8.0, 0.0), "destination": (80.0, 0.0)},
                ),
                workloads=[
                    WorkloadSpec(
                        kind="http",
                        start_s=9.0,
                        params={
                            "sites": ["blocked.example.com", "news.example.org"],
                            "mean_think_time_s": 0.5,
                        },
                    ),
                    WorkloadSpec(
                        kind="dns",
                        start_s=9.0,
                        params={"names": ["cdn.example.com"], "query_interval_s": 1.0},
                    ),
                ],
            )
        ],
        assignments=[
            ChainAssignmentSpec(
                fleet="smartphone",
                nfs=[
                    "firewall",
                    {"nf_type": "http-filter", "config": {"blocked_hosts": ["blocked.example.com"]}},
                    {
                        "nf_type": "dns-loadbalancer",
                        "config": {"pools": {"cdn.example.com": ["198.18.0.1", "198.18.0.2"]}},
                    },
                ],
                attach_at_s=1.0,
            )
        ],
    )


@register_scenario("commuter-rush")
def _commuter_rush(seed: int) -> ScenarioSpec:
    """Roaming storm: four commuters shuttle between the two networks."""
    rng = _builder_rng(seed, "commuter-rush")
    fleets = []
    assignments = []
    for index in range(4):
        name = f"commuter{index + 1}"
        speed = rng.uniform(6.0, 10.0)
        dwell = rng.uniform(4.0, 8.0)
        start = rng.uniform(2.0, 6.0)
        fleets.append(
            ClientFleetSpec(
                name=name,
                count=1,
                position=(0.0, float(index) * 2.0),
                mobility=MobilitySpec(
                    model="commuter",
                    start_s=start,
                    params={
                        "anchor_a": (0.0, float(index) * 2.0),
                        "anchor_b": (80.0, float(index) * 2.0),
                        "speed_mps": speed,
                        "dwell_s": dwell,
                    },
                ),
                workloads=[
                    WorkloadSpec(kind="http", start_s=2.0, params={"mean_think_time_s": 1.0}),
                    WorkloadSpec(kind="dns", start_s=2.5, params={"query_interval_s": 2.0}),
                ],
            )
        )
        assignments.append(
            ChainAssignmentSpec(fleet=name, nfs=["firewall"], attach_at_s=1.0 + 0.2 * index)
        )
    return ScenarioSpec(
        name="commuter-rush",
        description=(
            "Four commuters shuttle between the two wireless networks with "
            "web+DNS traffic and a firewall each: a sustained storm of "
            "handovers and cold migrations."
        ),
        seed=seed,
        duration_s=90.0,
        topology=TopologySpec(
            station_count=2,
            station_spacing_m=80.0,
            migration_strategy="cold",
            handover_scan_jitter_s=0.05,
        ),
        fleets=fleets,
        assignments=assignments,
    )


@register_scenario("federated-commuters")
def _federated_commuters(seed: int) -> ScenarioSpec:
    """Cross-region roaming storm: commuters shuttle over a region boundary.

    Four stations split into two federation regions of two local shards
    each (stations 1-2 = region 0, stations 3-4 = region 1).  The commuters
    anchor on the stations either side of the boundary, so every shuttle is
    a cross-*region* handoff: head-segment migration plus release/adopt
    between the regions' shard sets, with the streaming rollups tracking
    the move.  The federation test suite replays this spec across region
    counts to assert digest invariance.
    """
    rng = _builder_rng(seed, "federated-commuters")
    fleets = []
    assignments = []
    for index in range(4):
        name = f"fedcommuter{index + 1}"
        speed = rng.uniform(6.0, 10.0)
        dwell = rng.uniform(4.0, 8.0)
        start = rng.uniform(2.0, 6.0)
        fleets.append(
            ClientFleetSpec(
                name=name,
                count=1,
                position=(80.0, float(index) * 2.0),
                mobility=MobilitySpec(
                    model="commuter",
                    start_s=start,
                    params={
                        # station-2 (region 0) <-> station-3 (region 1).
                        "anchor_a": (80.0, float(index) * 2.0),
                        "anchor_b": (160.0, float(index) * 2.0),
                        "speed_mps": speed,
                        "dwell_s": dwell,
                    },
                ),
                workloads=[
                    WorkloadSpec(kind="http", start_s=2.0, params={"mean_think_time_s": 1.0}),
                    WorkloadSpec(kind="dns", start_s=2.5, params={"query_interval_s": 2.0}),
                ],
            )
        )
        assignments.append(
            ChainAssignmentSpec(fleet=name, nfs=["firewall"], attach_at_s=1.0 + 0.2 * index)
        )
    return ScenarioSpec(
        name="federated-commuters",
        description=(
            "Four commuters shuttle across the boundary between two "
            "federation regions (two local shards each) with web+DNS "
            "traffic and a firewall each: every roam is a cross-region "
            "handoff through the release/adopt machinery."
        ),
        seed=seed,
        duration_s=90.0,
        topology=TopologySpec(
            station_count=4,
            station_spacing_m=80.0,
            migration_strategy="cold",
            handover_scan_jitter_s=0.05,
            region_count=2,
            shard_count=2,
        ),
        fleets=fleets,
        assignments=assignments,
    )


@register_scenario("flash-crowd")
def _flash_crowd(seed: int) -> ScenarioSpec:
    """Attach burst: eight clients join within seconds and all want NFs."""
    return ScenarioSpec(
        name="flash-crowd",
        description=(
            "Eight clients appear within ~2.5 s between two stations and all "
            "attach a firewall at once -- the control-plane and container- "
            "instantiation burst case."
        ),
        seed=seed,
        duration_s=35.0,
        topology=TopologySpec(station_count=2, station_spacing_m=80.0, station_profile="server"),
        fleets=[
            ClientFleetSpec(
                name="crowd",
                count=8,
                position=(40.0, 0.0),
                spread_m=30.0,
                appear_at_s=1.0,
                appear_stagger_s=0.3,
                workloads=[
                    WorkloadSpec(kind="cbr", start_s=6.0, params={"rate_pps": 20.0}),
                ],
            )
        ],
        assignments=[
            ChainAssignmentSpec(fleet="crowd", nfs=["firewall"], attach_at_s=2.0),
        ],
    )


@register_scenario("rolling-failure")
def _rolling_failure(seed: int) -> ScenarioSpec:
    """Rolling station crashes; chains follow the displaced clients."""
    fleets = []
    assignments = []
    for index, x in enumerate((0.0, 70.0, 140.0)):
        name = f"user{index + 1}"
        fleets.append(
            ClientFleetSpec(
                name=name,
                count=1,
                position=(x, 0.0),
                workloads=[WorkloadSpec(kind="cbr", start_s=4.0, params={"rate_pps": 25.0})],
            )
        )
        assignments.append(
            ChainAssignmentSpec(
                fleet=name, nfs=["firewall", "flow-monitor"], attach_at_s=1.5 + 0.3 * index
            )
        )
    return ScenarioSpec(
        name="rolling-failure",
        description=(
            "Three stations, one pinned user each, all chained.  Station-1 "
            "then station-2 crash and recover in sequence; displaced clients "
            "roam to the neighbouring cell and their chains migrate live."
        ),
        seed=seed,
        duration_s=90.0,
        topology=TopologySpec(station_count=3, station_spacing_m=70.0, migration_strategy="cold"),
        fleets=fleets,
        assignments=assignments,
        faults=[
            FaultSpec(kind="station-crash", station=1, at_s=15.0, duration_s=30.0),
            FaultSpec(kind="station-crash", station=2, at_s=55.0, duration_s=25.0),
        ],
    )


@register_scenario("video-cell")
def _video_cell(seed: int) -> ScenarioSpec:
    """A video-heavy cell: segment bursts through rate-limiter + cache chains."""
    return ScenarioSpec(
        name="video-cell",
        description=(
            "Three viewers stream segment bursts in one cell behind "
            "rate-limiter + cache chains -- the sustained-throughput and "
            "queueing case."
        ),
        seed=seed,
        duration_s=40.0,
        topology=TopologySpec(station_count=1),
        fleets=[
            ClientFleetSpec(
                name="viewer",
                count=3,
                position=(0.0, 0.0),
                spread_m=10.0,
                workloads=[
                    WorkloadSpec(
                        kind="video",
                        start_s=3.0,
                        params={
                            "segment_interval_s": 1.0,
                            "packets_per_segment": 15,
                            "payload_bytes": 1200,
                        },
                    ),
                ],
            )
        ],
        assignments=[
            ChainAssignmentSpec(
                fleet="viewer",
                nfs=[
                    {"nf_type": "rate-limiter", "config": {"rate_bps": 8e6}},
                    "cache",
                ],
                attach_at_s=1.0,
            ),
        ],
    )


@register_scenario("firewall-churn")
def _firewall_churn(seed: int) -> ScenarioSpec:
    """Attach/detach churn: the same fleet gains and loses its firewall."""
    return ScenarioSpec(
        name="firewall-churn",
        description=(
            "Three clients repeatedly attach and detach firewalls while "
            "browsing -- exercises deployment teardown, flow-rule removal "
            "and fast-path invalidation under churn."
        ),
        seed=seed,
        duration_s=60.0,
        topology=TopologySpec(station_count=2),
        fleets=[
            ClientFleetSpec(
                name="churner",
                count=3,
                position=(10.0, 0.0),
                spread_m=8.0,
                workloads=[
                    WorkloadSpec(kind="http", start_s=2.0, params={"mean_think_time_s": 0.8}),
                ],
            )
        ],
        assignments=[
            ChainAssignmentSpec(fleet="churner", nfs=["firewall"], attach_at_s=2.0, detach_at_s=18.0),
            ChainAssignmentSpec(fleet="churner", nfs=["firewall"], attach_at_s=25.0, detach_at_s=40.0),
            ChainAssignmentSpec(fleet="churner", nfs=["firewall"], attach_at_s=47.0),
        ],
    )


@register_scenario("scheduler-day-cycle")
def _scheduler_day_cycle(seed: int) -> ScenarioSpec:
    """Compressed days: daytime and (wrapping) night-time NF windows."""
    day = 40.0
    return ScenarioSpec(
        name="scheduler-day-cycle",
        description=(
            "A 40 s compressed day, repeated three times: a daytime firewall "
            "window (10-25) and a night-time HTTP filter whose window wraps "
            "the day boundary (35 -> 8)."
        ),
        seed=seed,
        duration_s=120.0,
        topology=TopologySpec(station_count=1),
        fleets=[
            ClientFleetSpec(
                name="worker",
                count=2,
                position=(5.0, 0.0),
                spread_m=5.0,
                workloads=[
                    WorkloadSpec(kind="http", start_s=1.0, params={"mean_think_time_s": 1.5}),
                ],
            )
        ],
        assignments=[
            ChainAssignmentSpec(
                fleet="worker",
                nfs=["firewall"],
                attach_at_s=1.0,
                daily_window=(10.0, 25.0),
                day_length_s=day,
            ),
            ChainAssignmentSpec(
                fleet="worker",
                nfs=[{"nf_type": "http-filter", "config": {"blocked_hosts": ["blocked.example.com"]}}],
                attach_at_s=1.5,
                daily_window=(35.0, 8.0),  # wraps the day boundary
                day_length_s=day,
            ),
        ],
    )


@register_scenario("mixed-chain-density")
def _mixed_chain_density(seed: int) -> ScenarioSpec:
    """Many heterogeneous chains packed onto two server-class stations."""
    fleet_chains = [
        ("natfw", ["nat", "firewall"]),
        ("sec", ["ids", {"nf_type": "rate-limiter", "config": {"rate_bps": 10e6}}]),
        ("web", ["cache", "http-filter", "flow-monitor"]),
    ]
    fleets = []
    assignments = []
    for index, (name, nfs) in enumerate(fleet_chains):
        fleets.append(
            ClientFleetSpec(
                name=name,
                count=2,
                position=(20.0 + 20.0 * index, 0.0),
                spread_m=15.0,
                workloads=[
                    WorkloadSpec(kind="cbr", start_s=4.0, params={"rate_pps": 10.0}),
                    WorkloadSpec(kind="http", start_s=5.0, params={"mean_think_time_s": 2.0}),
                ],
            )
        )
        assignments.append(
            ChainAssignmentSpec(fleet=name, nfs=list(nfs), attach_at_s=1.0 + 0.4 * index)
        )
    return ScenarioSpec(
        name="mixed-chain-density",
        description=(
            "Six clients with heterogeneous 2-3 NF chains (NAT, IDS, cache, "
            "filters) packed onto two server-class stations -- the NF-density "
            "and chain-diversity case."
        ),
        seed=seed,
        duration_s=35.0,
        topology=TopologySpec(
            station_count=2, station_spacing_m=80.0, station_profile="server"
        ),
        fleets=fleets,
        assignments=assignments,
    )


@register_scenario("precopy-commuters")
def _precopy_commuters(seed: int) -> ScenarioSpec:
    """Make-before-break storm: commuters served by iterative pre-copy."""
    rng = _builder_rng(seed, "precopy-commuters")
    fleets = []
    assignments = []
    for index in range(2):
        name = f"rider{index + 1}"
        speed = rng.uniform(6.0, 9.0)
        dwell = rng.uniform(5.0, 9.0)
        fleets.append(
            ClientFleetSpec(
                name=name,
                count=1,
                position=(0.0, float(index) * 3.0),
                mobility=MobilitySpec(
                    model="commuter",
                    start_s=rng.uniform(3.0, 6.0),
                    params={
                        "anchor_a": (0.0, float(index) * 3.0),
                        "anchor_b": (140.0, float(index) * 3.0),
                        "speed_mps": speed,
                        "dwell_s": dwell,
                    },
                ),
                workloads=[
                    WorkloadSpec(kind="http", start_s=2.0, params={"mean_think_time_s": 0.8}),
                    WorkloadSpec(kind="cbr", start_s=2.5, params={"rate_pps": 15.0}),
                ],
            )
        )
        assignments.append(
            ChainAssignmentSpec(
                fleet=name, nfs=["firewall", "flow-monitor"], attach_at_s=1.0 + 0.3 * index
            )
        )
    return ScenarioSpec(
        name="precopy-commuters",
        description=(
            "Two commuters shuttle across three stations while their "
            "firewall + flow-monitor chains follow via iterative pre-copy: "
            "speculative replicas, shrinking dirty-delta rounds and "
            "millisecond switchovers under a sustained handover storm."
        ),
        seed=seed,
        duration_s=85.0,
        topology=TopologySpec(
            station_count=3,
            station_spacing_m=70.0,
            migration_strategy="precopy",
            precopy_max_rounds=3,
            handover_scan_jitter_s=0.05,
        ),
        fleets=fleets,
        assignments=assignments,
    )


@register_scenario("stateful-backhaul")
def _stateful_backhaul(seed: int) -> ScenarioSpec:
    """Checkpoint bytes fight client traffic for a narrow backhaul."""
    return ScenarioSpec(
        name="stateful-backhaul",
        description=(
            "One roamer's firewall chain migrates statefully over a 20 Mbit/s "
            "backhaul that two CBR-heavy fleets keep loaded: the checkpoint "
            "chunks queue behind (and delay) client traffic on the shared "
            "uplinks, making the transfer-time cost of state visible."
        ),
        seed=seed,
        duration_s=75.0,
        topology=TopologySpec(
            station_count=2,
            station_spacing_m=80.0,
            migration_strategy="stateful",
            uplink_bandwidth_bps=20e6,
        ),
        fleets=[
            ClientFleetSpec(
                name="roamer",
                count=1,
                position=(0.0, 0.0),
                mobility=MobilitySpec(
                    model="linear",
                    start_s=22.0,
                    params={"velocity_mps": (8.0, 0.0), "destination": (80.0, 0.0)},
                ),
                workloads=[
                    WorkloadSpec(kind="http", start_s=3.0, params={"mean_think_time_s": 0.5}),
                ],
            ),
            ClientFleetSpec(
                name="load-west",
                count=2,
                position=(5.0, 4.0),
                spread_m=6.0,
                workloads=[
                    WorkloadSpec(
                        kind="cbr", start_s=5.0, params={"rate_pps": 150.0, "payload_bytes": 1300}
                    ),
                ],
            ),
            ClientFleetSpec(
                name="load-east",
                count=2,
                position=(75.0, 4.0),
                spread_m=6.0,
                workloads=[
                    WorkloadSpec(
                        kind="cbr", start_s=5.0, params={"rate_pps": 150.0, "payload_bytes": 1300}
                    ),
                ],
            ),
        ],
        assignments=[
            ChainAssignmentSpec(fleet="roamer", nfs=["firewall"], attach_at_s=1.0),
        ],
    )


@register_scenario("hotspot-stadium")
def _hotspot_stadium(seed: int) -> ScenarioSpec:
    """A flash crowd saturates one router-class station (the E11 workload)."""
    fleets = [
        ClientFleetSpec(
            name="crowd",
            count=20,
            position=(0.0, 0.0),
            spread_m=12.0,
            appear_at_s=1.0,
            appear_stagger_s=0.1,
            workloads=[
                WorkloadSpec(kind="cbr", start_s=10.0, stop_s=30.0, params={"rate_pps": 5.0}),
            ],
        )
    ]
    assignments = [
        ChainAssignmentSpec(fleet="crowd", nfs=["firewall", "flow-monitor"], attach_at_s=2.0),
    ]
    # One light local per remaining station, so load-aware strategies have
    # realistic (lightly loaded, not empty) spill-over targets.
    for index, x in enumerate((80.0, 160.0, 240.0)):
        name = f"local{index + 2}"
        fleets.append(
            ClientFleetSpec(
                name=name,
                count=1,
                position=(x, 0.0),
                workloads=[
                    WorkloadSpec(kind="http", start_s=5.0, params={"mean_think_time_s": 2.0}),
                ],
            )
        )
        assignments.append(ChainAssignmentSpec(fleet=name, nfs=["firewall"], attach_at_s=1.0))
    return ScenarioSpec(
        name="hotspot-stadium",
        description=(
            "Twenty clients mob station-1 of a four-station deployment and "
            "all want firewall + flow-monitor chains: far more than one "
            "router-class station can host.  Closest-agent placement piles "
            "every chain onto the hotspot and fails most of them; the "
            "load-aware strategies spill to the three lightly loaded "
            "neighbours (benchmark E11's ablation workload)."
        ),
        seed=seed,
        duration_s=45.0,
        topology=TopologySpec(station_count=4, station_spacing_m=80.0),
        fleets=fleets,
        assignments=assignments,
    )


@register_scenario("slo-tight-embedding")
def _slo_tight_embedding(seed: int) -> ScenarioSpec:
    """Chain embedding under SLO pressure (the E13 workload shape)."""
    # Locals consume a slice of every station first, so no station retains
    # enough contiguous memory for a whole crowd chain -- the fragmentation
    # that whole-chain placement cannot use but per-NF embedding can.
    fleets = [
        ClientFleetSpec(
            name=f"local{index + 1}",
            count=1,
            position=(x, 0.0),
            workloads=[
                WorkloadSpec(kind="http", start_s=6.0, params={"mean_think_time_s": 2.5}),
            ],
        )
        for index, x in enumerate((0.0, 80.0, 160.0, 240.0))
    ]
    assignments = [
        ChainAssignmentSpec(fleet=f"local{index + 1}", nfs=["firewall"], attach_at_s=1.0)
        for index in range(4)
    ]
    # The crowd's chains carry explicit per-NF demands (20 MB each, 80 MB per
    # chain -- more than any station has free once its local firewall is up)
    # plus an end-to-end SLO loose enough to afford the inter-station detour,
    # so the embedding strategy must split them across neighbours.
    crowd_nfs = [
        {"nf_type": "ids", "requirements": {"memory_mb": 20.0}},
        {"nf_type": "cache", "requirements": {"memory_mb": 20.0}},
        {"nf_type": "http-filter", "requirements": {"memory_mb": 20.0}},
        {"nf_type": "flow-monitor", "requirements": {"memory_mb": 20.0}},
    ]
    fleets.append(
        ClientFleetSpec(
            name="crowd",
            count=8,
            position=(0.0, 0.0),
            spread_m=10.0,
            appear_at_s=1.0,
            appear_stagger_s=0.2,
            workloads=[
                WorkloadSpec(kind="cbr", start_s=12.0, stop_s=30.0, params={"rate_pps": 4.0}),
            ],
        )
    )
    assignments.append(
        ChainAssignmentSpec(
            fleet="crowd",
            nfs=crowd_nfs,
            attach_at_s=4.0,
            slo_max_latency_s=0.25,
            slo_min_bandwidth_mbps=1.0,
        )
    )
    # Latecomers whose SLO forbids any detour: by the time they attach the
    # hotspot is full, so their (tiny) chains would have to land on a
    # neighbour -- and the embedding strategy must reject them outright
    # (SLO-infeasible is terminal, never queued).
    fleets.append(
        ClientFleetSpec(
            name="strict",
            count=2,
            position=(5.0, 5.0),
            workloads=[
                WorkloadSpec(kind="dns", start_s=15.0, params={"query_interval_s": 4.0}),
            ],
        )
    )
    assignments.append(
        ChainAssignmentSpec(
            fleet="strict",
            nfs=["firewall"],
            attach_at_s=6.0,
            slo_max_latency_s=0.001,
        )
    )
    return ScenarioSpec(
        name="slo-tight-embedding",
        description=(
            "Four router-class stations, each nibbled by a local firewall "
            "chain, then eight clients mob station-1 wanting 80 MB four-NF "
            "chains with an end-to-end SLO.  No station has room for a "
            "whole crowd chain, so the embedding strategy splits them "
            "across neighbours where the SLO affords the detour, and "
            "rejects the strict latecomers whose SLO does not (benchmark "
            "E13's workload shape)."
        ),
        seed=seed,
        duration_s=40.0,
        topology=TopologySpec(
            station_count=4,
            station_spacing_m=80.0,
            placement_strategy="embedding",
        ),
        fleets=fleets,
        assignments=assignments,
    )


@register_scenario("autoscale-daily-wave")
def _autoscale_daily_wave(seed: int) -> ScenarioSpec:
    """A compressed daily load wave driving scale-up, then drain-down."""
    return ScenarioSpec(
        name="autoscale-daily-wave",
        description=(
            "Five office clients at station-2 attach firewall + HTTP-filter "
            "chains for a compressed 'working day' (t=5..45) and detach "
            "afterwards.  The autoscaler sees the station run hot, boots "
            "load-balancer-fronted replica chains on the neighbouring "
            "stations, rebalances when the replica budget is spent, and "
            "drains everything again once the wave passes."
        ),
        seed=seed,
        duration_s=70.0,
        topology=TopologySpec(
            station_count=3,
            station_spacing_m=80.0,
            autoscale_enabled=True,
            autoscale_interval_s=2.0,
            autoscale_up_threshold=0.8,
            autoscale_down_threshold=0.4,
            autoscale_max_replicas=1,
        ),
        fleets=[
            ClientFleetSpec(
                name="office",
                count=5,
                position=(80.0, 0.0),
                spread_m=10.0,
                workloads=[
                    WorkloadSpec(
                        kind="http", start_s=8.0, stop_s=40.0, params={"mean_think_time_s": 1.5}
                    ),
                ],
            ),
            ClientFleetSpec(
                name="steady",
                count=1,
                position=(0.0, 0.0),
                workloads=[
                    WorkloadSpec(kind="dns", start_s=4.0, params={"query_interval_s": 3.0}),
                ],
            ),
        ],
        assignments=[
            ChainAssignmentSpec(
                fleet="office", nfs=["firewall", "http-filter"], attach_at_s=5.0, detach_at_s=45.0
            ),
            ChainAssignmentSpec(fleet="steady", nfs=["firewall"], attach_at_s=1.0),
        ],
    )


@register_scenario("bulk-backhaul")
def _bulk_backhaul(seed: int) -> ScenarioSpec:
    """Bulk uploads saturate the backhaul: the hybrid core's home turf."""
    return ScenarioSpec(
        name="bulk-backhaul",
        description=(
            "Six uploaders push fixed-size bulk transfers through station-1's "
            "uplink while CBR probes measure the latency inflation; two more "
            "uploaders at station-2 sit behind a firewall chain (a packet- "
            "fidelity island) until it detaches, and a mid-run link-degrade "
            "fault demotes station-1's flows back to packets.  Runs under the "
            "hybrid fluid core by default; replay with --sim-mode packet to "
            "compare engines."
        ),
        seed=seed,
        duration_s=60.0,
        topology=TopologySpec(
            station_count=4,
            station_spacing_m=80.0,
            simulation_mode="hybrid",
        ),
        fleets=[
            ClientFleetSpec(
                name="uploader",
                count=6,
                position=(0.0, 0.0),
                spread_m=10.0,
                workloads=[
                    WorkloadSpec(
                        kind="bulk",
                        start_s=3.0,
                        params={
                            "total_bytes": 64_000_000.0,
                            "rate_bps": 30e6,
                        },
                    ),
                ],
            ),
            ClientFleetSpec(
                name="probe",
                count=2,
                position=(0.0, 6.0),
                spread_m=4.0,
                workloads=[
                    WorkloadSpec(kind="cbr", start_s=2.0, params={"rate_pps": 10.0}),
                ],
            ),
            ClientFleetSpec(
                name="chained-uploader",
                count=2,
                position=(80.0, 0.0),
                spread_m=8.0,
                workloads=[
                    WorkloadSpec(
                        kind="bulk",
                        start_s=4.0,
                        params={
                            "total_bytes": 80_000_000.0,
                            "rate_bps": 20e6,
                        },
                    ),
                ],
            ),
        ],
        assignments=[
            # The chain is a fidelity island: while it is attached the
            # chained uploaders stay packet-level; after the detach they
            # promote to fluid with their byte accounting intact.
            ChainAssignmentSpec(
                fleet="chained-uploader",
                nfs=["firewall"],
                attach_at_s=2.0,
                detach_at_s=30.0,
            ),
        ],
        faults=[
            FaultSpec(
                kind="link-degrade",
                station=1,
                at_s=10.0,
                duration_s=8.0,
                params={"bandwidth_factor": 0.3, "loss_rate": 0.02},
            ),
        ],
    )


@register_scenario("chaos-soak")
def _chaos_soak(seed: int) -> ScenarioSpec:
    """Soak test: roaming fleet plus a randomized fault barrage."""
    rng = _builder_rng(seed, "chaos-soak")
    fault_kinds = ["link-degrade", "container-oom", "link-down", "station-crash"]
    faults: List[FaultSpec] = []
    time_s = 10.0
    while time_s < 95.0:
        kind = rng.choice(fault_kinds)
        station = rng.randint(1, 3)
        duration: Optional[float] = None
        params: Dict[str, object] = {}
        if kind in ("link-degrade", "link-down", "station-crash"):
            duration = rng.uniform(6.0, 14.0)
        if kind == "link-degrade":
            params = {
                "bandwidth_factor": rng.uniform(0.05, 0.5),
                "loss_rate": rng.uniform(0.01, 0.15),
            }
        faults.append(
            FaultSpec(kind=kind, station=station, at_s=round(time_s, 3), duration_s=duration, params=params)
        )
        time_s += rng.uniform(8.0, 14.0)
    return ScenarioSpec(
        name="chaos-soak",
        description=(
            "Four random-waypoint roamers with chains and mixed traffic "
            "while crashes, OOM-kills, link loss and outages hit random "
            "stations for ~100 s -- the everything-at-once soak."
        ),
        seed=seed,
        duration_s=110.0,
        topology=TopologySpec(
            station_count=3,
            station_spacing_m=70.0,
            migration_strategy="cold",
            handover_scan_jitter_s=0.05,
        ),
        fleets=[
            ClientFleetSpec(
                name="roamer",
                count=4,
                position=(70.0, 0.0),
                spread_m=50.0,
                mobility=MobilitySpec(
                    model="waypoint",
                    start_s=2.0,
                    params={
                        "area": (0.0, -30.0, 140.0, 30.0),
                        "speed_mps": (2.0, 8.0),
                        "pause_s": (0.0, 4.0),
                    },
                ),
                workloads=[
                    WorkloadSpec(kind="http", start_s=3.0, params={"mean_think_time_s": 1.2}),
                    WorkloadSpec(kind="cbr", start_s=4.0, params={"rate_pps": 10.0}),
                ],
            )
        ],
        assignments=[
            ChainAssignmentSpec(fleet="roamer", nfs=["firewall"], attach_at_s=2.0),
        ],
        faults=faults,
    )

@register_scenario("slice-embb-iot")
def _slice_embb_iot(seed: int) -> ScenarioSpec:
    """Two slices of one mobile-core bundle, each priced against its own SLO."""
    return ScenarioSpec(
        name="slice-embb-iot",
        description=(
            "One mobile-core bundle instantiated twice from the catalogue: "
            "an eMBB slice (amf->smf->upf, tight latency + bandwidth SLO) "
            "for two video viewers and an IoT slice (amf->upf, relaxed "
            "latency, trickle bandwidth) for three sensors, embedded by the "
            "SLO-pricing placement strategy."
        ),
        seed=seed,
        duration_s=45.0,
        topology=TopologySpec(
            station_count=2,
            station_spacing_m=80.0,
            placement_strategy="embedding",
        ),
        fleets=[
            ClientFleetSpec(
                name="embb",
                count=2,
                position=(10.0, 0.0),
                spread_m=10.0,
                workloads=[
                    WorkloadSpec(
                        kind="video",
                        start_s=4.0,
                        params={
                            "segment_interval_s": 1.0,
                            "packets_per_segment": 12,
                            "payload_bytes": 1200,
                        },
                    ),
                ],
            ),
            ClientFleetSpec(
                name="iot",
                count=3,
                position=(90.0, 0.0),
                spread_m=10.0,
                workloads=[
                    WorkloadSpec(
                        kind="cbr",
                        start_s=5.0,
                        params={"rate_pps": 5.0, "payload_bytes": 200},
                    ),
                ],
            ),
        ],
        bundles=[
            BundleAssignmentSpec(fleet="embb", bundle="mobile-core", version=1, slice="embb", attach_at_s=1.5),
            BundleAssignmentSpec(fleet="iot", bundle="mobile-core", version=1, slice="iot", attach_at_s=2.0),
        ],
    )


@register_scenario("upf-edge-vs-core")
def _upf_edge_vs_core(seed: int) -> ScenarioSpec:
    """UPF-at-edge ablation: breakout traffic terminates locally vs backhauled."""
    fleets = []
    assignments = []
    for name, x, breakout in (("edge", 0.0, True), ("core", 80.0, False)):
        fleets.append(
            ClientFleetSpec(
                name=name,
                count=2,
                position=(x, 0.0),
                spread_m=8.0,
                workloads=[
                    # CBR aimed at the breakout port, so the edge UPF absorbs
                    # it at the station while the core UPF tunnels it upstream.
                    WorkloadSpec(
                        kind="cbr",
                        start_s=4.0,
                        params={"rate_pps": 40.0, "payload_bytes": 800, "dst_port": 8080},
                    ),
                ],
            )
        )
        assignments.append(
            ChainAssignmentSpec(
                fleet=name,
                nfs=[
                    {
                        "nf_type": "upf",
                        "config": {"edge_breakout": breakout, "breakout_ports": [8080]},
                    }
                ],
                attach_at_s=1.0,
            )
        )
    return ScenarioSpec(
        name="upf-edge-vs-core",
        description=(
            "Two identical CBR fleets aimed at port 8080 behind UPF chains: "
            "station-1's UPF runs edge breakout and terminates the flows at "
            "the station, station-2's tunnels everything upstream -- the "
            "backhaul saving shows up as breakout vs tunneled byte counters."
        ),
        seed=seed,
        duration_s=40.0,
        topology=TopologySpec(station_count=2, station_spacing_m=80.0),
        fleets=fleets,
        assignments=assignments,
    )


@register_scenario("pandemic-surge")
def _pandemic_surge(seed: int) -> ScenarioSpec:
    """Residential-shift soak: the traffic mix migrates from office to home.

    Two cells -- an office cell and a residential cell -- run the same four
    protocols (web, DNS, QUIC apps, ABR streaming) behind firewall + edge-
    cache chains.  Three :class:`TrafficEraSpec` boundaries then replay a
    compressed lockdown: office-hours web traffic collapses while QUIC app
    sessions and ABR streaming surge, and the edge caches' hit mix shifts
    with it.  No bulk workloads, so the digest is invariant across
    ``simulation_mode`` as well as shard/region counts.
    """
    fleets = []
    assignments = []
    for name, x, count in (("office", 0.0, 2), ("residential", 80.0, 3)):
        fleets.append(
            ClientFleetSpec(
                name=name,
                count=count,
                position=(x, 0.0),
                spread_m=10.0,
                workloads=[
                    WorkloadSpec(
                        kind="http",
                        start_s=3.0,
                        params={
                            "sites": ["portal.example.com", "news.example.org"],
                            "mean_think_time_s": 1.0,
                        },
                    ),
                    WorkloadSpec(kind="dns", start_s=3.5, params={"query_interval_s": 2.0}),
                    WorkloadSpec(
                        kind="quic",
                        start_s=4.0,
                        params={"mean_gap_s": 1.5, "max_burst": 3},
                    ),
                    WorkloadSpec(
                        kind="abr",
                        start_s=5.0,
                        params={
                            "content": f"{name}-clip",
                            "segment_duration_s": 2.0,
                            "loop_segments": 5,
                        },
                    ),
                ],
            )
        )
        assignments.append(
            ChainAssignmentSpec(fleet=name, nfs=["firewall", "cache"], attach_at_s=1.0)
        )
    return ScenarioSpec(
        name="pandemic-surge",
        description=(
            "An office cell and a residential cell run web+DNS+QUIC+ABR "
            "behind firewall + edge-cache chains while three era boundaries "
            "replay a compressed lockdown: office web traffic collapses and "
            "home QUIC/ABR streaming surges, shifting what the edge caches "
            "absorb."
        ),
        seed=seed,
        duration_s=90.0,
        topology=TopologySpec(station_count=2, station_spacing_m=80.0),
        fleets=fleets,
        assignments=assignments,
        eras=[
            TrafficEraSpec(
                at_s=0.0,
                name="office-hours",
                shares={"http": 0.40, "dns": 0.25, "quic": 0.25, "abr": 0.10},
            ),
            TrafficEraSpec(
                at_s=30.0,
                name="lockdown-shift",
                shares={"http": 0.15, "dns": 0.10, "quic": 0.30, "abr": 0.45},
            ),
            TrafficEraSpec(
                at_s=60.0,
                name="evening-streaming",
                shares={"http": 0.10, "dns": 0.05, "quic": 0.25, "abr": 0.60},
            ),
        ],
    )


@register_scenario("cache-vs-backhaul")
def _cache_vs_backhaul(seed: int) -> ScenarioSpec:
    """Cache-placement ablation: edge-served hits vs core-forwarded hits.

    Mirrors ``upf-edge-vs-core``: two identical fleets behind identical
    caches, except station-1's cache is ``placement="edge"`` (hits are
    served at the station and never touch the uplink) and station-2's is
    ``placement="core"`` (hits are *recorded* but every request is still
    forwarded upstream).  The looping ABR playlists and small web URL set
    make the caches actually hit, so the backhaul saving is physically
    visible as the difference between the two stations' uplink byte
    counters -- benchmark E16's workload.
    """
    fleets = []
    assignments = []
    for name, x, placement in (("edge", 0.0, "edge"), ("core", 80.0, "core")):
        fleets.append(
            ClientFleetSpec(
                name=name,
                count=2,
                position=(x, 0.0),
                spread_m=8.0,
                workloads=[
                    WorkloadSpec(
                        kind="abr",
                        start_s=3.0,
                        params={
                            "content": "popular-clip",
                            "segment_duration_s": 1.0,
                            "loop_segments": 4,
                        },
                    ),
                    WorkloadSpec(
                        kind="http",
                        start_s=4.0,
                        params={
                            "sites": ["portal.example.com"],
                            "mean_think_time_s": 0.8,
                        },
                    ),
                    WorkloadSpec(
                        kind="quic",
                        start_s=5.0,
                        params={"mean_gap_s": 2.0, "max_burst": 2},
                    ),
                ],
            )
        )
        assignments.append(
            ChainAssignmentSpec(
                fleet=name,
                nfs=[
                    {
                        "nf_type": "cache",
                        "config": {"placement": placement, "capacity_mb": 8.0},
                    }
                ],
                attach_at_s=1.0,
            )
        )
    return ScenarioSpec(
        name="cache-vs-backhaul",
        description=(
            "Two identical ABR+web+QUIC fleets behind identical edge caches, "
            "except station-1's cache serves hits locally and station-2's "
            "forwards everything upstream (placement ablation): the backhaul "
            "saving shows up as the gap between the stations' uplink byte "
            "counters under an ABR-heavy era."
        ),
        seed=seed,
        duration_s=45.0,
        topology=TopologySpec(station_count=2, station_spacing_m=80.0),
        fleets=fleets,
        assignments=assignments,
        eras=[
            TrafficEraSpec(
                at_s=8.0,
                name="abr-heavy",
                shares={"abr": 0.60, "http": 0.25, "quic": 0.15},
            ),
        ],
    )


@register_scenario("bundle-rolling-upgrade")
def _bundle_rolling_upgrade(seed: int) -> ScenarioSpec:
    """Roll mobile-core v1 -> v2 across four live instances under chaos."""
    fleets = []
    bundles = []
    placements = (
        ("embb-a", 0.0, "embb", 1.5),
        ("iot-a", 80.0, "iot", 2.0),
        ("embb-b", 160.0, "embb", 2.5),
        ("iot-b", 240.0, "iot", 3.0),
    )
    for name, x, slice_name, attach_at in placements:
        rate = 25.0 if slice_name == "embb" else 8.0
        fleets.append(
            ClientFleetSpec(
                name=name,
                count=1,
                position=(x, 0.0),
                workloads=[
                    WorkloadSpec(kind="cbr", start_s=4.0, params={"rate_pps": rate}),
                ],
            )
        )
        bundles.append(
            BundleAssignmentSpec(
                fleet=name,
                bundle="mobile-core",
                version=1,
                slice=slice_name,
                attach_at_s=attach_at,
            )
        )
    return ScenarioSpec(
        name="bundle-rolling-upgrade",
        description=(
            "Four mobile-core@v1 instances (two eMBB, two IoT slices) on "
            "four stations; at t=20 the orchestrator walks them to v2 with "
            "pre-copy cutovers while station-2 crashes and recovers mid-"
            "roll -- the upgrade retries around the outage and every "
            "instance ends the run on v2 with zero coverage gap."
        ),
        seed=seed,
        duration_s=60.0,
        topology=TopologySpec(station_count=4, station_spacing_m=80.0, migration_strategy="cold"),
        fleets=fleets,
        bundles=bundles,
        upgrades=[
            BundleUpgradeSpec(bundle="mobile-core", to_version=2, at_s=20.0, mode="precopy"),
        ],
        faults=[
            FaultSpec(kind="station-crash", station=2, at_s=18.0, duration_s=10.0),
        ],
    )
