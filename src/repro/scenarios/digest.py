"""Reproducibility digests over a scenario run's telemetry.

A :class:`MetricsDigest` reduces everything a run observed -- event counts,
switch/fast-path counters, handover and migration traces, per-workload
latency samples, notification tallies -- to one SHA-256 plus one hash per
section.  Two runs of the same spec with the same seed must produce the same
digest; any nondeterminism (a global ``random`` call, dict-order dependence,
wall-clock leakage) changes at least one section hash, and
:meth:`MetricsDigest.diff` names the sections that moved so the culprit is
easy to localise.

The canonical encoding sorts every mapping and renders floats with ``%.12g``
so the digest is stable across processes while remaining sensitive to any
behavioural change.  Values derived from process-global counters (assignment
ids, container names...) must never be fed in: they differ between two runs
in the same process even when behaviour is identical.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List


def canonicalize(value: Any) -> Any:
    """Make a telemetry tree deterministic and JSON-serialisable."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return format(value, ".12g")
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        return value
    if isinstance(value, dict):
        return {str(key): canonicalize(value[key]) for key in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    raise TypeError(f"cannot canonicalize {type(value).__name__} value {value!r} for digesting")


def _sha256(payload: Any) -> str:
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


@dataclass(frozen=True)
class MetricsDigest:
    """The reproducibility fingerprint of one scenario run."""

    hexdigest: str
    components: Dict[str, str] = field(default_factory=dict)
    #: One hash per first-level key of every dict-valued section
    #: (``"stations/station-3"``), so :meth:`diff` can localise a mismatch
    #: below the section level.  Derived data: excluded from equality (the
    #: overall hash is still computed from the section hashes alone).
    subsections: Dict[str, str] = field(default_factory=dict, compare=False)
    #: Optional station -> ``region-r/shard-s`` labels supplied by the run's
    #: manager.  Never hashed and never compared -- two digests of the same
    #: behaviour under different region/shard counts are equal even though
    #: their provenance differs; diff output uses *both* sides' labels.
    provenance: Dict[str, str] = field(default_factory=dict, compare=False)

    @classmethod
    def compute(
        cls, sections: Dict[str, Any], provenance: Dict[str, str] = None
    ) -> "MetricsDigest":
        """Digest a ``{section_name: telemetry_tree}`` mapping."""
        canonical = {name: canonicalize(tree) for name, tree in sections.items()}
        components = {name: _sha256(tree) for name, tree in canonical.items()}
        subsections = {
            f"{name}/{key}": _sha256(sub)
            for name, tree in canonical.items()
            if isinstance(tree, dict)
            for key, sub in tree.items()
        }
        overall = _sha256({name: components[name] for name in sorted(components)})
        return cls(
            hexdigest=overall,
            components=components,
            subsections=subsections,
            provenance=dict(provenance or {}),
        )

    def diff(self, other: "MetricsDigest") -> List[str]:
        """The finest-grained keys whose hashes differ (for loud test
        failures): ``"section/key"`` when the mismatch localises below a
        dict-valued section, the bare section name otherwise.  Keys that
        name a station carry its region/shard provenance --
        ``"stations/station-3 [region-1/shard-0]"`` -- so a cross-region
        digest mismatch points at the owning shard, not just the aggregate.
        """
        out: List[str] = []
        for name in sorted(set(self.components) | set(other.components)):
            if self.components.get(name) == other.components.get(name):
                continue
            prefix = f"{name}/"
            keys = sorted(
                {key for key in self.subsections if key.startswith(prefix)}
                | {key for key in other.subsections if key.startswith(prefix)}
            )
            fine = [
                key for key in keys if self.subsections.get(key) != other.subsections.get(key)
            ]
            if not fine:
                out.append(name)
                continue
            for key in fine:
                leaf = key[len(prefix):]
                label = self.provenance.get(leaf) or other.provenance.get(leaf)
                out.append(f"{key} [{label}]" if label else key)
        return out

    @property
    def short(self) -> str:
        return self.hexdigest[:12]

    def __str__(self) -> str:
        return self.hexdigest

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"MetricsDigest({self.short}..., {len(self.components)} sections)"
