"""Compile a :class:`ScenarioSpec` into a live, fully seeded testbed run.

The :class:`ScenarioRunner` is the only place where declarative specs meet
live objects.  It builds a :class:`~repro.core.testbed.GNFTestbed` from the
spec's topology, spawns the client fleets (creation, mobility, workloads and
chain attach/detach are all *scheduled*, so staggered appearances and churn
are first-class), wires the fault plan through a
:class:`~repro.scenarios.faults.FaultInjector`, and threads **one** master
seed through every random decision:

* per-client mobility RNGs     -- ``seed_for("mobility", client)``
* per-workload generator RNGs  -- ``seed_for("workload", client, index)``
* handover scan jitter         -- ``seed_for("handover", "scan-jitter")``
* fault victim selection       -- ``seed_for("faults")``
* fleet position scatter       -- ``seed_for("fleet", fleet, index)``

Because nothing else draws randomness, two runs of the same spec with the
same seed replay identically, which :class:`~repro.scenarios.digest.MetricsDigest`
turns into an assertable fact.

Phased use (benchmarks that measure mid-run)::

    run = ScenarioRunner(spec).start()
    run.advance(10.0)            # ... inspect run.testbed / run.generators ...
    result = run.finalize()      # digest + teardown + drain

One-shot use::

    result = ScenarioRunner(spec).run()
    assert result.drained and result.digest == expected
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.chain import ChainSLO, NFRequirements, NFSpec, ServiceChain
from repro.core.errors import UnknownClientError
from repro.core.manager import Assignment, AssignmentState
from repro.core.scheduler import TimeSchedule
from repro.core.testbed import GNFTestbed, TestbedConfig
from repro.netem.topology import StationProfile
from repro.netem.trafficgen import (
    ABRVideoGenerator,
    BulkTransferGenerator,
    CBRTrafficGenerator,
    DNSWorkloadGenerator,
    HTTPWorkloadGenerator,
    QUICWorkloadGenerator,
    VideoWorkloadGenerator,
)
from repro.scenarios.digest import MetricsDigest
from repro.scenarios.faults import FaultInjector
from repro.scenarios.spec import (
    MIGRATION_STRATEGIES,
    PLACEMENT_STRATEGIES,
    SIMULATION_MODES,
    ClientFleetSpec,
    MobilitySpec,
    ScenarioSpec,
    ScenarioSpecError,
    TrafficEraSpec,
    WorkloadSpec,
)
from repro.wireless.mobility import (
    CommuterMobility,
    LinearMobility,
    MobilityModel,
    RandomWaypointMobility,
    StaticMobility,
    TraceMobility,
)

#: Attach requests arriving before the Manager learnt the client's location
#: are retried on this period, up to the attempt cap (then logged as failed).
_ATTACH_RETRY_S = 0.5
_ATTACH_MAX_ATTEMPTS = 30

#: Hard ceiling on post-teardown drain work: a correctly stopped scenario
#: needs a tiny fraction of this, so hitting the cap means some component
#: kept rescheduling itself -- exactly what the drain check must catch.
_DRAIN_MAX_EVENTS = 500_000


@dataclass
class ScenarioResult:
    """Everything a finished scenario run reports back."""

    spec: ScenarioSpec
    seed: int
    digest: MetricsDigest
    testbed: GNFTestbed
    duration_s: float
    events_processed: int
    #: True when the post-teardown drain emptied the event queue.
    drained: bool
    pending_events_after_teardown: int
    workload_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    handovers: int = 0
    migrations_started: int = 0
    migrations_completed: int = 0
    faults_injected: int = 0
    attach_failures: List[str] = field(default_factory=list)
    #: Placement-engine counters (placements local/remote, admission queue
    #: depth/timeouts) plus the strategy name, and the autoscaler summary.
    placement_stats: Dict[str, object] = field(default_factory=dict)
    autoscale_summary: Dict[str, float] = field(default_factory=dict)
    #: Hybrid-core counters (flows promoted/demoted, bytes fluid vs packet,
    #: solver epochs).  All zeros in pure packet mode.
    fluid_summary: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> Dict[str, object]:
        """Compact run report (printed by the scenario CLI)."""
        return {
            "scenario": self.spec.name,
            "seed": self.seed,
            "digest": self.digest.hexdigest,
            "duration_s": self.duration_s,
            "events_processed": self.events_processed,
            "handovers": self.handovers,
            "migrations_completed": self.migrations_completed,
            "faults_injected": self.faults_injected,
            "drained": self.drained,
        }


class ScenarioRun:
    """A live, started scenario (returned by :meth:`ScenarioRunner.start`)."""

    def __init__(
        self,
        spec: ScenarioSpec,
        seed: Optional[int] = None,
        shard_count: Optional[int] = None,
        migration_strategy: Optional[str] = None,
        placement_strategy: Optional[str] = None,
        simulation_mode: Optional[str] = None,
        region_count: Optional[int] = None,
    ) -> None:
        self.spec = spec.validate()
        self.seed = spec.seed if seed is None else seed
        topo = spec.topology
        self.shard_count = topo.shard_count if shard_count is None else shard_count
        if self.shard_count < 1:
            # The override must obey the same rule TopologySpec.validate()
            # enforces on the spec's own value.
            raise ScenarioSpecError(f"shard_count must be >= 1, got {self.shard_count}")
        self.region_count = topo.region_count if region_count is None else region_count
        if self.region_count < 1:
            raise ScenarioSpecError(f"region_count must be >= 1, got {self.region_count}")
        if self.region_count > topo.station_count:
            raise ScenarioSpecError(
                f"region_count ({self.region_count}) cannot exceed "
                f"station_count ({topo.station_count})"
            )
        self.migration_strategy = (
            topo.migration_strategy if migration_strategy is None else migration_strategy
        )
        if self.migration_strategy not in MIGRATION_STRATEGIES:
            raise ScenarioSpecError(
                f"unknown migration strategy {self.migration_strategy!r}; "
                f"valid: {MIGRATION_STRATEGIES}"
            )
        self.placement_strategy = (
            topo.placement_strategy if placement_strategy is None else placement_strategy
        )
        if self.placement_strategy not in PLACEMENT_STRATEGIES:
            raise ScenarioSpecError(
                f"unknown placement strategy {self.placement_strategy!r}; "
                f"valid: {PLACEMENT_STRATEGIES}"
            )
        self.simulation_mode = (
            topo.simulation_mode if simulation_mode is None else simulation_mode
        )
        if self.simulation_mode not in SIMULATION_MODES:
            raise ScenarioSpecError(
                f"unknown simulation mode {self.simulation_mode!r}; "
                f"valid: {SIMULATION_MODES}"
            )
        profile = (
            StationProfile.server_class()
            if topo.station_profile == "server"
            else StationProfile.router_class()
        )
        self.testbed = GNFTestbed(
            TestbedConfig(
                seed=self.seed,
                station_count=topo.station_count,
                cells_per_station=topo.cells_per_station,
                station_profile=profile,
                station_spacing_m=topo.station_spacing_m,
                uplink_bandwidth_bps=topo.uplink_bandwidth_bps,
                server_count=topo.server_count,
                dns_zone={name: list(ips) for name, ips in topo.dns_zone.items()},
                migration_strategy=self.migration_strategy,
                migration_chunk_bytes=topo.migration_chunk_bytes,
                precopy_max_rounds=topo.precopy_max_rounds,
                precopy_downtime_target_s=topo.precopy_downtime_target_s,
                precopy_dirty_fraction=topo.precopy_dirty_fraction,
                heartbeat_interval_s=topo.heartbeat_interval_s,
                scan_interval_s=topo.scan_interval_s,
                handover_scan_jitter_s=topo.handover_scan_jitter_s,
                fastpath_enabled=topo.fastpath_enabled,
                placement_strategy=self.placement_strategy,
                admission_control=topo.admission_control,
                admission_queue_timeout_s=topo.admission_queue_timeout_s,
                autoscale_enabled=topo.autoscale_enabled,
                autoscale_interval_s=topo.autoscale_interval_s,
                autoscale_up_threshold=topo.autoscale_up_threshold,
                autoscale_down_threshold=topo.autoscale_down_threshold,
                autoscale_max_replicas=topo.autoscale_max_replicas,
                shard_count=self.shard_count,
                region_count=self.region_count,
                simulation_mode=self.simulation_mode,
                fluid_epoch_s=topo.fluid_epoch_s,
            )
        )
        self.simulator = self.testbed.simulator
        self.faults = FaultInjector(
            self.testbed, rng=random.Random(self.testbed.seed_for("faults"))
        )
        self.generators: Dict[str, object] = {}
        #: Workload spec behind each generator (era scaling needs the kind).
        self._generator_workloads: Dict[str, WorkloadSpec] = {}
        #: Era currently in force (None until the first boundary fires) and
        #: the applied-boundary log that feeds the digest's ``eras`` section.
        self._current_era: Optional[TrafficEraSpec] = None
        self._eras_applied: List[Dict[str, object]] = []
        self.mobilities: Dict[str, MobilityModel] = {}
        self.assignments: List[Tuple[str, Assignment]] = []
        self.attach_failures: List[str] = []
        self._advanced_s = 0.0
        self._finalized: Optional[ScenarioResult] = None
        # Orchestration events (spawns, workload starts, attaches, detaches)
        # still pending at finalize are cancelled, so an early finalize can
        # never have future scenario activity fire into the drain.
        self._control_events: List[object] = []
        self._build()
        self.testbed.start()

    # ------------------------------------------------------------------ build

    def _control(self, delay_s: float, callback, *args) -> None:
        """Schedule an orchestration step, cancellable at finalize."""
        self._control_events.append(self.simulator.schedule(delay_s, callback, *args))

    def _build(self) -> None:
        client_index = 0
        for fleet in self.spec.fleets:
            for index, client_name in enumerate(fleet.client_names()):
                appear_at = fleet.appear_at_s + index * fleet.appear_stagger_s
                position = self._scatter(fleet, index)
                if appear_at <= 0:
                    self._spawn_client(fleet, client_name, client_index, position)
                else:
                    self._control(
                        appear_at, self._spawn_client, fleet, client_name, client_index, position
                    )
                client_index += 1
        for order, assignment_spec in enumerate(self.spec.assignments):
            fleet = self.spec.fleet(assignment_spec.fleet)
            for client_name in fleet.client_names():
                self._control(
                    assignment_spec.attach_at_s, self._attach, assignment_spec, order, client_name, 0
                )
        for order, bundle_spec in enumerate(self.spec.bundles):
            fleet = self.spec.fleet(bundle_spec.fleet)
            for client_name in fleet.client_names():
                self._control(
                    bundle_spec.attach_at_s,
                    self._attach_bundle, bundle_spec, order, client_name, 0,
                )
        for upgrade_spec in self.spec.upgrades:
            self._control(upgrade_spec.at_s, self._run_upgrade, upgrade_spec)
        for era in self.spec.eras:
            self._control(era.at_s, self._apply_era, era)
        self.faults.schedule_all(self.spec.faults)

    def _scatter(self, fleet: ClientFleetSpec, index: int) -> Tuple[float, float]:
        base_x, base_y = fleet.position
        if fleet.spread_m <= 0:
            return (base_x, base_y)
        rng = random.Random(self.testbed.seed_for("fleet", fleet.name, index))
        radius = fleet.spread_m * math.sqrt(rng.random())
        angle = rng.uniform(0.0, 2 * math.pi)
        return (base_x + radius * math.cos(angle), base_y + radius * math.sin(angle))

    def _spawn_client(
        self,
        fleet: ClientFleetSpec,
        client_name: str,
        client_index: int,
        position: Tuple[float, float],
    ) -> None:
        client = self.testbed.add_client(client_name, position=position)
        now = self.simulator.now
        mobility = self._make_mobility(fleet.mobility, client, client_name)
        if mobility is not None:
            self.mobilities[client_name] = mobility
            start_delay = max(0.0, fleet.mobility.start_s - now)
            self._control(start_delay, mobility.start)
        for workload_index, workload in enumerate(fleet.workloads):
            start_delay = max(0.0, workload.start_s - now)
            self._control(
                start_delay, self._start_workload, workload, client_name, client_index, workload_index
            )

    def _make_mobility(
        self, spec: MobilitySpec, client, client_name: str
    ) -> Optional[MobilityModel]:
        params = dict(spec.params)
        if spec.model == "static":
            # A static client needs no ticking model at all.
            return None
        if spec.model == "linear":
            return LinearMobility(self.simulator, client, **params)
        if spec.model == "waypoint":
            params.setdefault("seed", self.testbed.seed_for("mobility", client_name))
            return RandomWaypointMobility(self.simulator, client, **params)
        if spec.model == "commuter":
            return CommuterMobility(self.simulator, client, **params)
        if spec.model == "trace":
            return TraceMobility(self.simulator, client, **params)
        raise ValueError(f"unknown mobility model {spec.model!r}")

    def _start_workload(
        self, workload: WorkloadSpec, client_name: str, client_index: int, workload_index: int
    ) -> None:
        client = self.testbed.clients[client_name]
        name = f"{client_name}/{workload.kind}{workload_index}"
        params = dict(workload.params)
        if workload.kind == "cbr":
            params.setdefault("server_ip", self.testbed.server_ip)
            params.setdefault("src_port", 40_000 + client_index * 8 + workload_index)
            generator = CBRTrafficGenerator(self.simulator, client, name=name, **params)
        elif workload.kind == "http":
            params.setdefault("server_ip", self.testbed.server_ip)
            params.setdefault("seed", self.testbed.seed_for("workload", client_name, workload_index))
            generator = HTTPWorkloadGenerator(self.simulator, client, name=name, **params)
        elif workload.kind == "dns":
            params.setdefault("resolver_ip", self.testbed.server_ip)
            params.setdefault("seed", self.testbed.seed_for("workload", client_name, workload_index))
            generator = DNSWorkloadGenerator(self.simulator, client, name=name, **params)
        elif workload.kind == "video":
            params.setdefault("server_ip", self.testbed.server_ip)
            generator = VideoWorkloadGenerator(self.simulator, client, name=name, **params)
        elif workload.kind == "quic":
            params.setdefault("server_ip", self.testbed.server_ip)
            params.setdefault("seed", self.testbed.seed_for("workload", client_name, workload_index))
            generator = QUICWorkloadGenerator(self.simulator, client, name=name, **params)
        elif workload.kind == "abr":
            params.setdefault("server_ip", self.testbed.server_ip)
            params.setdefault("seed", self.testbed.seed_for("workload", client_name, workload_index))
            params.setdefault("src_port", 46_000 + client_index * 8 + workload_index)
            generator = ABRVideoGenerator(self.simulator, client, name=name, **params)
        elif workload.kind == "bulk":
            params.setdefault("server_ip", self.testbed.server_ip)
            params.setdefault("total_bytes", 1_500_000.0)
            params.setdefault("src_port", 47_000 + client_index * 8 + workload_index)
            generator = BulkTransferGenerator(
                self.simulator,
                client,
                scheduler=self.testbed.hybrid,
                name=name,
                **params,
            )
        else:
            raise ValueError(f"unknown workload kind {workload.kind!r}")
        self.generators[name] = generator
        self._generator_workloads[name] = workload
        generator.start()
        # A generator spawned mid-era (staggered appearance) starts at the
        # era's share for its kind, not at full native pace.
        self._apply_era_to(name, generator)
        if workload.stop_s is not None:
            self._control(max(0.0, workload.stop_s - self.simulator.now), generator.stop)

    # ------------------------------------------------------------ traffic eras

    def _apply_era(self, era: TrafficEraSpec) -> None:
        """Rescale every era-scalable generator at an era boundary."""
        self._current_era = era
        self._eras_applied.append(
            {"at_s": era.at_s, "name": era.name, "shares": era.to_dict()["shares"]}
        )
        for name, generator in self.generators.items():
            self._apply_era_to(name, generator)

    def _apply_era_to(self, name: str, generator) -> None:
        if self._current_era is None:
            return
        workload = self._generator_workloads.get(name)
        if workload is None or not workload.era_scaled or workload.kind == "bulk":
            return
        intensity = self._current_era.intensity_for(workload.kind)
        if intensity is not None:
            generator.set_intensity(intensity)

    # ----------------------------------------------------------- attach/detach

    def _attach(self, assignment_spec, order: int, client_name: str, attempt: int) -> None:
        client = self.testbed.clients.get(client_name)
        if client is None or not client.is_connected:
            self._retry_attach(assignment_spec, order, client_name, attempt)
            return
        specs = []
        for (nf_type, config), requirements in zip(
            assignment_spec.nf_specs(), assignment_spec.nf_requirements()
        ):
            specs.append(
                NFSpec(
                    nf_type,
                    config=config,
                    requirements=NFRequirements.from_dict(requirements) if requirements else None,
                )
            )
        slo = None
        if assignment_spec.has_slo():
            slo = ChainSLO(
                max_latency_s=assignment_spec.slo_max_latency_s,
                min_bandwidth_mbps=assignment_spec.slo_min_bandwidth_mbps,
            )
        chain = ServiceChain(
            specs,
            name=f"{self.spec.name}/{assignment_spec.fleet}",
            slo=slo,
        )
        schedule = None
        if assignment_spec.daily_window is not None:
            start, end = assignment_spec.daily_window
            schedule = TimeSchedule.daily(start, end, day_length_s=assignment_spec.day_length_s)
        try:
            assignment = self.testbed.manager.attach_chain(client.ip, chain, schedule=schedule)
        except UnknownClientError:
            # Associated, but the (dis)connect event is still in flight on the
            # control channel: fall back to the station the client sees.
            station = client.current_station_name
            if station is None:
                self._retry_attach(assignment_spec, order, client_name, attempt)
                return
            assignment = self.testbed.manager.attach_chain(
                client.ip, chain, schedule=schedule, station_name=station
            )
        self.assignments.append((client_name, assignment))
        if assignment_spec.detach_at_s is not None:
            delay = max(0.0, assignment_spec.detach_at_s - self.simulator.now)
            self._control(delay, self._detach, assignment)

    def _attach_bundle(self, bundle_spec, order: int, client_name: str, attempt: int) -> None:
        """Instantiate a catalogued bundle (or one slice of it) for a client.

        The compiled chain goes through the exact same attach machinery as a
        plain ChainAssignmentSpec; the only extra step is registering the
        live instance with the BundleUpgradeOrchestrator so a later
        BundleUpgradeSpec can find and roll it.
        """
        client = self.testbed.clients.get(client_name)
        if client is None or not client.is_connected:
            self._retry_bundle_attach(bundle_spec, order, client_name, attempt)
            return
        bundle = self.testbed.upgrades.catalogue.get(bundle_spec.bundle, bundle_spec.version)
        chain = bundle.chain_for(bundle_spec.slice)
        try:
            assignment = self.testbed.manager.attach_chain(client.ip, chain)
        except UnknownClientError:
            station = client.current_station_name
            if station is None:
                self._retry_bundle_attach(bundle_spec, order, client_name, attempt)
                return
            assignment = self.testbed.manager.attach_chain(client.ip, chain, station_name=station)
        self.assignments.append((client_name, assignment))
        self.testbed.upgrades.register_instance(
            assignment.assignment_id,
            bundle.name,
            bundle.version,
            bundle_spec.slice,
            client.ip,
            fleet=bundle_spec.fleet,
        )
        if bundle_spec.detach_at_s is not None:
            delay = max(0.0, bundle_spec.detach_at_s - self.simulator.now)
            self._control(delay, self._detach_bundle, assignment)

    def _retry_bundle_attach(self, bundle_spec, order: int, client_name: str, attempt: int) -> None:
        if attempt + 1 >= _ATTACH_MAX_ATTEMPTS:
            self.attach_failures.append(f"{client_name}/bundle{order}")
            return
        self._control(
            _ATTACH_RETRY_S, self._attach_bundle, bundle_spec, order, client_name, attempt + 1
        )

    def _detach_bundle(self, assignment: Assignment) -> None:
        self.testbed.upgrades.forget_instance(assignment.assignment_id)
        self._detach(assignment)

    def _run_upgrade(self, upgrade_spec) -> None:
        self.testbed.upgrades.upgrade_bundle(
            upgrade_spec.bundle, upgrade_spec.to_version, mode=upgrade_spec.mode
        )

    def _retry_attach(self, assignment_spec, order: int, client_name: str, attempt: int) -> None:
        if attempt + 1 >= _ATTACH_MAX_ATTEMPTS:
            self.attach_failures.append(f"{client_name}/assignment{order}")
            return
        self._control(
            _ATTACH_RETRY_S, self._attach, assignment_spec, order, client_name, attempt + 1
        )

    def _detach(self, assignment: Assignment) -> None:
        if assignment.state in (AssignmentState.REMOVED, AssignmentState.FAILED):
            return
        self.testbed.manager.detach(assignment.assignment_id)

    # ---------------------------------------------------------------- running

    def advance(self, duration_s: float) -> "ScenarioRun":
        """Advance the scenario clock (callable repeatedly for phased runs)."""
        if self._finalized is not None:
            raise RuntimeError("scenario run already finalized")
        self.testbed.run(duration_s)
        self._advanced_s += duration_s
        return self

    def finalize(self) -> ScenarioResult:
        """Digest the telemetry, tear everything down and drain the queue."""
        if self._finalized is not None:
            return self._finalized
        # Station -> region/shard labels (empty for a single GNFManager) let
        # MetricsDigest.diff() point a cross-region mismatch at the owning
        # shard; provenance is excluded from the hash itself.
        provenance = getattr(self.testbed.manager, "station_provenance", lambda: {})()
        digest = MetricsDigest.compute(self.telemetry_sections(), provenance=provenance)
        workload_stats = {
            name: generator.stats() for name, generator in sorted(self.generators.items())
        }
        # Teardown: stop every periodic source, then run the queue dry.  A
        # correctly behaved scenario always drains; leftovers mean some
        # component kept rescheduling itself after stop() -- surfaced via
        # ``drained`` / ``pending_events_after_teardown`` and asserted on by
        # the property tests.
        for event in self._control_events:
            if event.pending:
                event.cancel()
        self._control_events.clear()
        for generator in self.generators.values():
            generator.stop()
        for mobility in self.mobilities.values():
            mobility.stop()
        self.faults.cancel_pending()
        self.testbed.stop()
        self.simulator.run(max_events=_DRAIN_MAX_EVENTS)
        pending = self.simulator.pending_events
        roaming = self.testbed.roaming
        self._finalized = ScenarioResult(
            spec=self.spec,
            seed=self.seed,
            digest=digest,
            testbed=self.testbed,
            duration_s=self._advanced_s,
            events_processed=self.simulator.events_processed,
            drained=pending == 0,
            pending_events_after_teardown=pending,
            workload_stats=workload_stats,
            handovers=len(self.testbed.handover.events),
            migrations_started=len(roaming.records),
            migrations_completed=len(roaming.completed_migrations()),
            faults_injected=int(self.faults.summary().get("faults_injected", 0.0)),
            attach_failures=list(self.attach_failures),
            placement_stats={
                "strategy": self.testbed.placement_engine.strategy.name,
                **self.testbed.placement_engine.stats(),
            },
            autoscale_summary=self.testbed.autoscaler.summary(),
            fluid_summary=self.testbed.hybrid.summary(),
        )
        return self._finalized

    # -------------------------------------------------------------- telemetry

    def telemetry_sections(self) -> Dict[str, object]:
        """The telemetry tree fed into :class:`MetricsDigest`.

        Only values that are deterministic *per run* may appear here.  In
        particular nothing derived from process-global counters (assignment
        ids, container/chain names) is included -- those differ between two
        back-to-back runs in the same process even when behaviour is
        identical.
        """
        testbed = self.testbed
        stations: Dict[str, object] = {}
        for station_name, agent in testbed.agents.items():
            runtime = agent.runtime
            stations[station_name] = {
                "switch": testbed.topology.stations[station_name].switch.summary(),
                "fastpath": testbed.topology.stations[station_name].switch.flow_cache.stats(),
                "containers_started": runtime.containers_started,
                "containers_failed": runtime.containers_failed,
                "pulls_performed": runtime.pulls_performed,
                "containers_running": runtime.running_count,
                "deployments_completed": agent.deployments_completed,
                "deployments_failed": agent.deployments_failed,
                "heartbeats_sent": agent.heartbeats_sent,
                "connected_clients": sorted(agent.connected_clients.values()),
                # Edge-cache effectiveness is a per-station property (backhaul
                # savings), sampled by the Agent collector's ``cache`` source
                # on every tick -- digested here the way ``flows.*`` counters
                # are observable, so cache regressions flip the digest.
                "cache": {
                    key: value
                    for key, value in sorted(agent.collector.latest().items())
                    if key.startswith("cache.")
                },
            }
        gateway = testbed.topology.gateway
        manager = testbed.manager
        assignment_states: Dict[str, int] = {}
        total_migrations = 0
        for _, assignment in self.assignments:
            state = assignment.state.value
            assignment_states[state] = assignment_states.get(state, 0) + 1
            total_migrations += assignment.migrations
        workloads = {}
        for name, generator in self.generators.items():
            workloads[name] = {
                "stats": generator.stats(),
                "rtt_samples": list(generator.rtts),
            }
        return {
            # The raw simulator event count is deliberately NOT digested: it
            # is an implementation detail of the control-plane transport (a
            # coalescing ControlBus delivers the same messages at the same
            # times under far fewer events), and the digest must be identical
            # with sharding on or off.  It stays observable via
            # ``ScenarioResult.events_processed``.
            "simulator": {
                "now": self.simulator.now,
            },
            "stations": stations,
            "gateway": {
                "packets_routed_upstream": gateway.packets_routed_upstream,
                "packets_routed_downstream": gateway.packets_routed_downstream,
                "packets_dropped": gateway.packets_dropped,
                "state_chunks_routed": gateway.state_chunks_routed,
                "location_updates": gateway.location_updates,
            },
            "clients": {name: client.stats() for name, client in testbed.clients.items()},
            "workloads": workloads,
            "handover": {
                "summary": testbed.handover.summary(),
                "events": [
                    {
                        "time": event.time,
                        "client": event.client_name,
                        "old_cell": event.old_cell,
                        "new_cell": event.new_cell,
                        "completed_at": event.completed_at,
                    }
                    for event in testbed.handover.events
                ],
            },
            "roaming": {
                "summary": testbed.roaming.summary(),
                "records": [
                    {
                        "client": record.client_ip,
                        "nf_types": list(record.nf_types),
                        "from": record.from_station,
                        "to": record.to_station,
                        "strategy": record.strategy,
                        "started_at": record.started_at,
                        "completed_at": record.completed_at,
                        "coverage_gap_s": record.coverage_gap_s,
                        "state_transferred_mb": record.state_transferred_mb,
                        "bytes_moved": record.bytes_moved,
                        "rounds": record.rounds,
                        "freeze_time_s": record.freeze_time_s,
                        "downtime_s": record.downtime_s,
                        "success": record.success,
                    }
                    for record in testbed.roaming.records
                ],
            },
            "manager": {
                "heartbeats_processed": manager.heartbeats_processed,
                "client_events_processed": manager.client_events_processed,
                "assignment_states": assignment_states,
                "assignment_migrations": total_migrations,
                "scheduler_transitions": manager.scheduler.transitions,
                "notifications": manager.notifications.summary(),
            },
            # Placement counters and autoscaler actions are digested too:
            # both are stations-and-counts only (no strategy names, no
            # process-global ids), so the digest stays invariant across
            # shard counts -- and across placement strategies whenever the
            # strategies actually make the same decisions.
            "placement": testbed.placement_engine.stats(),
            # Only the behaviourally meaningful hybrid counters are digested
            # (``digest_summary`` excludes epoch bookkeeping), so scenarios
            # whose flows never go fluid digest identically across
            # ``simulation_mode`` -- the contract the cross-mode equivalence
            # tests assert.
            "fluid": testbed.hybrid.digest_summary(),
            "autoscaler": {
                "summary": testbed.autoscaler.summary(),
                "events": [
                    {
                        "time": event.time,
                        "kind": event.kind,
                        "from": event.from_station,
                        "to": event.to_station,
                        "nf_count": event.nf_count,
                    }
                    for event in testbed.autoscaler.events
                ],
            },
            "faults": {
                "summary": self.faults.summary(),
                "log": self.faults.applied,
            },
            # Live bundle census (``bundle@vN`` -> count), upgrade walk
            # counters and the per-upgrade records -- keyed by client_ip,
            # never by assignment id (process-global counter).
            "bundles": testbed.upgrades.telemetry(),
            # Applied era boundaries (time, name, shares): purely spec-driven
            # and client-side, so the section is identical across shard,
            # region and placement knobs by construction -- but any drift in
            # *when* the mix shifted flips the digest.
            "eras": self._eras_applied,
            "attach_failures": sorted(self.attach_failures),
        }


class ScenarioRunner:
    """Runs declarative scenarios (one-shot or phased)."""

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec.validate()

    def start(
        self,
        seed: Optional[int] = None,
        shard_count: Optional[int] = None,
        migration_strategy: Optional[str] = None,
        placement_strategy: Optional[str] = None,
        simulation_mode: Optional[str] = None,
        region_count: Optional[int] = None,
    ) -> ScenarioRun:
        """Build and start a live run (use for phased/mid-run observation).

        ``seed`` overrides the *runtime* master seed only: mobility, workload,
        jitter and fault-victim RNGs are re-derived from it, while the spec's
        structure (fleet speeds, fault plans drawn by canned builders from
        ``spec.seed``) is kept fixed -- useful for sensitivity analysis on an
        identical scenario shape.  To reseed the structure too, rebuild via
        ``build_scenario(name, seed)``.

        ``shard_count`` overrides the spec topology's control-plane shard
        count; the run's telemetry digest is identical for any value (the
        E10 determinism matrix asserts this).  ``migration_strategy``
        overrides the topology's strategy (``cold``/``stateful``/``precopy``)
        so the same scenario shape can be compared across strategies.
        ``placement_strategy`` likewise overrides the topology's placement
        strategy name (benchmark E11's ablation knob); with the default
        strategy the digest matches the historical closest-agent behaviour.
        ``simulation_mode`` overrides the topology's ``packet``/``hybrid``
        engine selection; scenarios without bulk workloads digest
        identically under either mode.  ``region_count`` overrides the
        topology's federation region count; like shard_count, the digest is
        identical for any value (the federation invariance matrix asserts
        1 region x K shards == R regions x K shards each).
        """
        return ScenarioRun(
            self.spec,
            seed=seed,
            shard_count=shard_count,
            migration_strategy=migration_strategy,
            placement_strategy=placement_strategy,
            simulation_mode=simulation_mode,
            region_count=region_count,
        )

    def run(
        self,
        seed: Optional[int] = None,
        shard_count: Optional[int] = None,
        migration_strategy: Optional[str] = None,
        placement_strategy: Optional[str] = None,
        simulation_mode: Optional[str] = None,
        region_count: Optional[int] = None,
    ) -> ScenarioResult:
        """Run the whole scenario; ``seed`` overrides runtime RNGs (see start)."""
        run = self.start(
            seed=seed,
            shard_count=shard_count,
            migration_strategy=migration_strategy,
            placement_strategy=placement_strategy,
            simulation_mode=simulation_mode,
            region_count=region_count,
        )
        run.advance(self.spec.duration_s)
        return run.finalize()
