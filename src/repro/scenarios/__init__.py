"""Declarative scenarios: specify a GNF run as data, replay it exactly.

This package turns whole end-to-end GNF experiments -- topology, client
fleets, mobility, workload mixes, NF chain schedules and injected faults --
into plain-data :class:`ScenarioSpec` objects that a :class:`ScenarioRunner`
compiles into a :class:`~repro.core.testbed.GNFTestbed` run.  One master
seed is threaded through **every** RNG in the run, and the resulting
telemetry is hashed into a :class:`MetricsDigest`, so every scenario is
byte-reproducible: same spec + same seed => same digest, always.

The spec schema
---------------

``ScenarioSpec`` -- the top level:

=================  =========================================================
``name``           scenario identifier (also the registry key when canned)
``seed``           master seed; every RNG derives a child seed from it
``duration_s``     how long the scenario runs (simulated seconds)
``topology``       a ``TopologySpec``: ``station_count``,
                   ``cells_per_station``, ``station_spacing_m``,
                   ``station_profile`` (``"router"``/``"server"``),
                   ``server_count``, ``migration_strategy``
                   (``cold``/``stateful``/``precopy``), ``fastpath_enabled``,
                   ``shard_count`` (control-plane shards; digest-invariant),
                   ``handover_scan_jitter_s``, ``dns_zone``, ...
``fleets``         ``ClientFleetSpec`` list: ``count`` clients named
                   ``<name>-1..N`` at ``position`` (+ up to ``spread_m`` of
                   seeded scatter), appearing at ``appear_at_s`` spaced by
                   ``appear_stagger_s``, moving per a ``MobilitySpec``
                   (``static``/``linear``/``waypoint``/``commuter``/
                   ``trace`` + model params) and generating traffic per a
                   list of ``WorkloadSpec`` (``cbr``/``http``/``dns``/
                   ``video``/``bulk``/``quic``/``abr`` + generator params,
                   ``start_s``/``stop_s``, ``era_scaled``)
``assignments``    ``ChainAssignmentSpec`` list: attach the NF chain
                   ``nfs`` (names or ``{"nf_type", "config"}`` dicts) to
                   every client of ``fleet`` at ``attach_at_s``, optionally
                   detach at ``detach_at_s``, optionally gate it on a
                   ``daily_window`` (start > end wraps the day boundary)
                   with a compressed ``day_length_s``
``faults``         ``FaultSpec`` list: ``station-crash``, ``link-degrade``
                   (``loss_rate``/``bandwidth_factor`` params),
                   ``link-down``, ``container-oom`` against ``station``
                   (name or 1-based index) at ``at_s``, auto-recovering
                   after ``duration_s``
``eras``           ``TrafficEraSpec`` list: at each (strictly increasing)
                   ``at_s`` the per-protocol ``shares`` map (summing to 1)
                   rescales every era-scalable generator -- the evolving
                   traffic-mix schedule
=================  =========================================================

All times are simulated seconds from scenario start.  The full authoring
guide (field tables, a worked example and the canned-library reference)
lives in ``docs/SCENARIOS.md``.

Adding a canned scenario
------------------------

Write a builder ``(seed: int) -> ScenarioSpec`` in
:mod:`repro.scenarios.library` (drawing any structural randomness from
``_builder_rng(seed, name)`` so the build itself replays) and decorate it::

    @register_scenario("my-scenario")
    def _my_scenario(seed: int) -> ScenarioSpec:
        return ScenarioSpec(name="my-scenario", seed=seed, ...)

It is then runnable via ``run_scenario("my-scenario", seed=...)``, the
``examples/run_scenario.py`` CLI and the determinism test matrix in
``tests/test_scenarios.py`` (which automatically replays every registered
scenario twice and compares digests).

Quickstart
----------
>>> from repro.scenarios import run_scenario
>>> result = run_scenario("fig2-roaming", seed=7)   # doctest: +SKIP
>>> result.migrations_completed >= 1                # doctest: +SKIP
True
>>> result.digest == run_scenario("fig2-roaming", seed=7).digest  # doctest: +SKIP
True
"""

from repro.scenarios.digest import MetricsDigest, canonicalize
from repro.scenarios.faults import FaultInjector
from repro.scenarios.library import (
    build_scenario,
    register_scenario,
    run_scenario,
    scenario_has_bulk,
    scenario_names,
)
from repro.scenarios.runner import ScenarioResult, ScenarioRun, ScenarioRunner
from repro.scenarios.spec import (
    ChainAssignmentSpec,
    ClientFleetSpec,
    FaultSpec,
    MobilitySpec,
    ScenarioSpec,
    ScenarioSpecError,
    TopologySpec,
    TrafficEraSpec,
    WorkloadSpec,
)

__all__ = [
    "MetricsDigest",
    "canonicalize",
    "FaultInjector",
    "ScenarioResult",
    "ScenarioRun",
    "ScenarioRunner",
    "ScenarioSpec",
    "ScenarioSpecError",
    "TopologySpec",
    "ClientFleetSpec",
    "MobilitySpec",
    "WorkloadSpec",
    "TrafficEraSpec",
    "ChainAssignmentSpec",
    "FaultSpec",
    "register_scenario",
    "scenario_names",
    "build_scenario",
    "run_scenario",
    "scenario_has_bulk",
]
