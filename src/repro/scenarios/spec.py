"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a plain-data description of one end-to-end GNF
run: the topology to build, the client fleets to populate it with (each with
a mobility model and a workload mix), the NF chains to attach on a time
schedule, and the faults to inject.  Specs contain no live objects and no
callables, so they can be validated, serialised (``to_dict``) and replayed
byte-for-byte by :class:`~repro.scenarios.runner.ScenarioRunner`.

All times are in simulated seconds relative to scenario start (t=0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

MOBILITY_MODELS = ("static", "linear", "waypoint", "commuter", "trace")
WORKLOAD_KINDS = ("cbr", "http", "dns", "video", "bulk", "quic", "abr")
#: Kinds a :class:`TrafficEraSpec` may scale.  ``bulk`` is excluded: its
#: pacing is a byte-budget contract owned by the hybrid fluid core, and
#: scaling it would break packet/hybrid digest equivalence.
ERA_SCALABLE_KINDS = ("cbr", "http", "dns", "video", "quic", "abr")
SIMULATION_MODES = ("packet", "hybrid")
FAULT_KINDS = ("station-crash", "link-degrade", "link-down", "container-oom")
STATION_PROFILES = ("router", "server")
MIGRATION_STRATEGIES = ("cold", "stateful", "precopy")
#: Placement strategy names a spec (or the ``--placement`` CLI flag) may
#: select; kept in lockstep with ``repro.core.placement.STRATEGY_FACTORIES``
#: (asserted by the placement-engine tests) so the spec layer stays free of
#: live-code imports.
PLACEMENT_STRATEGIES = (
    "closest-agent",
    "least-loaded",
    "latency-weighted",
    "bin-packing",
    "load-aware",
    "latency-aware",
    "embedding",
)


class ScenarioSpecError(ValueError):
    """A scenario spec failed validation."""


def _as_dict(value: Any) -> Any:
    """Recursively convert a spec tree into plain JSON-able data."""
    if hasattr(value, "to_dict"):
        return value.to_dict()
    if isinstance(value, dict):
        return {str(key): _as_dict(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_as_dict(item) for item in value]
    return value


@dataclass
class MobilitySpec:
    """How a fleet's clients move.

    ``model`` selects the class from :mod:`repro.wireless.mobility`;
    ``params`` holds that model's constructor keywords (``area``,
    ``speed_mps``, ``velocity_mps``, ``anchor_a`` ...).  Random models derive
    their RNG seed from the scenario's master seed automatically; an explicit
    ``seed`` in ``params`` overrides it.  ``start_s`` delays the first
    movement tick.
    """

    model: str = "static"
    start_s: float = 0.0
    params: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        if self.model not in MOBILITY_MODELS:
            raise ScenarioSpecError(f"unknown mobility model {self.model!r}; valid: {MOBILITY_MODELS}")
        if self.start_s < 0:
            raise ScenarioSpecError(f"mobility start_s must be >= 0, got {self.start_s}")

    def to_dict(self) -> Dict[str, Any]:
        return {"model": self.model, "start_s": self.start_s, "params": _as_dict(self.params)}


@dataclass
class WorkloadSpec:
    """One traffic generator attached to every client of a fleet.

    ``kind`` selects the generator from :mod:`repro.netem.trafficgen`
    (``cbr``/``http``/``dns``/``video``/``quic``/``abr``/``bulk``);
    ``params`` holds its constructor keywords (``rate_pps``,
    ``mean_think_time_s``, ``names`` ...).  The generator starts at
    ``start_s`` and, when ``stop_s`` is set, stops there.  Seeded generators
    derive per-client seeds from the master seed.  ``era_scaled`` opts the
    generator out of :class:`TrafficEraSpec` intensity scaling when False
    (bulk workloads are never era-scaled regardless).
    """

    kind: str = "cbr"
    start_s: float = 0.0
    stop_s: Optional[float] = None
    era_scaled: bool = True
    params: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ScenarioSpecError(f"unknown workload kind {self.kind!r}; valid: {WORKLOAD_KINDS}")
        if self.start_s < 0:
            raise ScenarioSpecError(f"workload start_s must be >= 0, got {self.start_s}")
        if self.stop_s is not None and self.stop_s <= self.start_s:
            raise ScenarioSpecError(f"workload stop_s ({self.stop_s}) must be after start_s ({self.start_s})")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "start_s": self.start_s,
            "stop_s": self.stop_s,
            "era_scaled": self.era_scaled,
            "params": _as_dict(self.params),
        }


@dataclass
class TrafficEraSpec:
    """One step of a piecewise per-protocol traffic-share schedule.

    At ``at_s`` the scenario's generators are rescaled so every workload
    kind named in ``shares`` offers ``share * len(shares)`` of its native
    load -- a *uniform* share map (``1/n`` each) is behaviour-neutral, while
    a skewed one shifts the mix (e.g. the residential evening surge towards
    ABR video and QUIC).  A share of 0 pauses that kind's generators until a
    later era resumes them; kinds absent from the map keep their current
    intensity.  Shares must sum to 1 at every era boundary (a *mix*, not an
    absolute load knob) and only :data:`ERA_SCALABLE_KINDS` may appear --
    ``bulk`` byte budgets are contracts the eras must not touch.
    """

    at_s: float
    shares: Dict[str, float] = field(default_factory=dict)
    name: str = ""

    def validate(self) -> None:
        if self.at_s < 0:
            raise ScenarioSpecError(f"era at_s must be >= 0, got {self.at_s}")
        if not self.shares:
            raise ScenarioSpecError("era shares must be non-empty")
        for kind, share in self.shares.items():
            if kind not in ERA_SCALABLE_KINDS:
                raise ScenarioSpecError(
                    f"era shares name non-scalable kind {kind!r}; valid: {ERA_SCALABLE_KINDS}"
                )
            if share < 0:
                raise ScenarioSpecError(f"era share for {kind!r} must be >= 0, got {share}")
        total = sum(self.shares.values())
        if abs(total - 1.0) > 1e-6:
            raise ScenarioSpecError(
                f"era shares must sum to 1.0, got {total} (era at_s={self.at_s})"
            )

    def intensity_for(self, kind: str) -> Optional[float]:
        """Generator intensity for ``kind`` (None = era does not touch it).

        Normalised so uniform shares map to intensity 1.0 for every kind:
        the era reshapes the *mix* without changing the aggregate load a
        uniform split would offer.
        """
        if kind not in self.shares:
            return None
        return self.shares[kind] * len(self.shares)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "at_s": self.at_s,
            "shares": {kind: self.shares[kind] for kind in sorted(self.shares)},
            "name": self.name,
        }


@dataclass
class ClientFleetSpec:
    """A homogeneous group of mobile clients.

    Clients are named ``<name>-1 .. <name>-count`` and placed at
    ``position`` plus a per-client uniform scatter of up to ``spread_m``
    metres (drawn from the scenario seed).  ``appear_at_s`` delays when the
    first client joins the network and ``appear_stagger_s`` spaces the rest
    (the flash-crowd knob).
    """

    name: str
    count: int = 1
    position: Tuple[float, float] = (0.0, 0.0)
    spread_m: float = 0.0
    appear_at_s: float = 0.0
    appear_stagger_s: float = 0.0
    mobility: MobilitySpec = field(default_factory=MobilitySpec)
    workloads: List[WorkloadSpec] = field(default_factory=list)

    def client_names(self) -> List[str]:
        return [f"{self.name}-{index + 1}" for index in range(self.count)]

    def validate(self) -> None:
        if not self.name:
            raise ScenarioSpecError("fleet name must be non-empty")
        if self.count < 1:
            raise ScenarioSpecError(f"fleet {self.name!r}: count must be >= 1, got {self.count}")
        if self.spread_m < 0 or self.appear_at_s < 0 or self.appear_stagger_s < 0:
            raise ScenarioSpecError(f"fleet {self.name!r}: spread/appear values must be >= 0")
        self.mobility.validate()
        for workload in self.workloads:
            workload.validate()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "position": list(self.position),
            "spread_m": self.spread_m,
            "appear_at_s": self.appear_at_s,
            "appear_stagger_s": self.appear_stagger_s,
            "mobility": self.mobility.to_dict(),
            "workloads": [workload.to_dict() for workload in self.workloads],
        }


NFEntry = Union[str, Dict[str, Any]]


@dataclass
class ChainAssignmentSpec:
    """Attach an NF chain to every client of a fleet.

    ``nfs`` lists the chain positions first-to-last; each entry is either a
    bare NF type name or ``{"nf_type": ..., "config": {...}, "requirements":
    {...}}`` where ``requirements`` carries per-NF resource demands
    (``cpu_units``, ``memory_mb``, ``bandwidth_mbps`` -- see
    :class:`repro.core.chain.NFRequirements`).  ``slo_max_latency_s`` and
    ``slo_min_bandwidth_mbps`` declare the chain's end-to-end SLO; the
    ``embedding`` placement strategy prices inter-station detours against it
    and rejects SLO-infeasible attachments outright.  The chain is
    attached at ``attach_at_s`` and, when ``detach_at_s`` is set, detached
    there (the churn knob).  ``daily_window`` (with ``day_length_s``) makes
    the assignment a recurring time-of-day schedule; a window whose start is
    after its end wraps the day boundary.
    """

    fleet: str
    nfs: List[NFEntry] = field(default_factory=list)
    attach_at_s: float = 1.0
    detach_at_s: Optional[float] = None
    daily_window: Optional[Tuple[float, float]] = None
    day_length_s: float = 86_400.0
    slo_max_latency_s: Optional[float] = None
    slo_min_bandwidth_mbps: float = 0.0

    def nf_specs(self) -> List[Tuple[str, Dict[str, Any]]]:
        """Normalise ``nfs`` into (nf_type, config) pairs."""
        pairs: List[Tuple[str, Dict[str, Any]]] = []
        for entry in self.nfs:
            if isinstance(entry, str):
                pairs.append((entry, {}))
            else:
                pairs.append((str(entry["nf_type"]), dict(entry.get("config", {}))))
        return pairs

    def nf_requirements(self) -> List[Optional[Dict[str, Any]]]:
        """Per-position resource demands (``None`` where an entry has none)."""
        demands: List[Optional[Dict[str, Any]]] = []
        for entry in self.nfs:
            if isinstance(entry, str):
                demands.append(None)
            else:
                requirements = entry.get("requirements")
                demands.append(dict(requirements) if requirements else None)
        return demands

    def has_slo(self) -> bool:
        return self.slo_max_latency_s is not None or self.slo_min_bandwidth_mbps > 0

    def validate(self) -> None:
        if not self.fleet:
            raise ScenarioSpecError("assignment fleet must be non-empty")
        if not self.nfs:
            raise ScenarioSpecError(f"assignment for fleet {self.fleet!r} needs at least one NF")
        for nf_type, _ in self.nf_specs():
            if not nf_type:
                raise ScenarioSpecError(f"assignment for fleet {self.fleet!r} has an empty NF type")
        if self.attach_at_s < 0:
            raise ScenarioSpecError(f"attach_at_s must be >= 0, got {self.attach_at_s}")
        if self.detach_at_s is not None and self.detach_at_s <= self.attach_at_s:
            raise ScenarioSpecError(
                f"detach_at_s ({self.detach_at_s}) must be after attach_at_s ({self.attach_at_s})"
            )
        if self.day_length_s <= 0:
            raise ScenarioSpecError(f"day_length_s must be positive, got {self.day_length_s}")
        if self.slo_max_latency_s is not None and self.slo_max_latency_s <= 0:
            raise ScenarioSpecError(
                f"slo_max_latency_s must be positive, got {self.slo_max_latency_s}"
            )
        if self.slo_min_bandwidth_mbps < 0:
            raise ScenarioSpecError(
                f"slo_min_bandwidth_mbps must be >= 0, got {self.slo_min_bandwidth_mbps}"
            )
        for position, requirements in enumerate(self.nf_requirements()):
            if not requirements:
                continue
            for key, value in requirements.items():
                if key not in ("cpu_units", "memory_mb", "bandwidth_mbps"):
                    raise ScenarioSpecError(
                        f"assignment for fleet {self.fleet!r}, NF {position}: "
                        f"unknown requirement {key!r}"
                    )
                if value is not None and float(value) < 0:
                    raise ScenarioSpecError(
                        f"assignment for fleet {self.fleet!r}, NF {position}: "
                        f"{key} must be >= 0, got {value}"
                    )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fleet": self.fleet,
            "nfs": [entry if isinstance(entry, str) else _as_dict(entry) for entry in self.nfs],
            "attach_at_s": self.attach_at_s,
            "detach_at_s": self.detach_at_s,
            "daily_window": list(self.daily_window) if self.daily_window else None,
            "day_length_s": self.day_length_s,
            "slo_max_latency_s": self.slo_max_latency_s,
            "slo_min_bandwidth_mbps": self.slo_min_bandwidth_mbps,
        }


UPGRADE_MODES = ("precopy", "stateful")


@dataclass
class BundleAssignmentSpec:
    """Instantiate a catalogued service bundle for every client of a fleet.

    ``bundle`` names a :class:`repro.core.bundles.BundleSpec` in the default
    catalogue; ``version`` pins one (0 means the latest registered).
    ``slice`` selects a named slice of the bundle's NF graph (eMBB vs. IoT,
    each with its own SLO) -- empty runs the full graph.  The runner compiles
    the bundle into a plain ServiceChain at ``attach_at_s`` and registers the
    live instance with the testbed's BundleUpgradeOrchestrator, so a later
    :class:`BundleUpgradeSpec` can roll it forward.
    """

    fleet: str
    bundle: str
    version: int = 0
    slice: str = ""
    attach_at_s: float = 1.0
    detach_at_s: Optional[float] = None

    def validate(self) -> None:
        if not self.fleet:
            raise ScenarioSpecError("bundle assignment fleet must be non-empty")
        if not self.bundle:
            raise ScenarioSpecError("bundle assignment bundle name must be non-empty")
        if self.version < 0:
            raise ScenarioSpecError(f"bundle version must be >= 0, got {self.version}")
        if self.attach_at_s < 0:
            raise ScenarioSpecError(f"attach_at_s must be >= 0, got {self.attach_at_s}")
        if self.detach_at_s is not None and self.detach_at_s <= self.attach_at_s:
            raise ScenarioSpecError(
                f"detach_at_s ({self.detach_at_s}) must be after attach_at_s ({self.attach_at_s})"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fleet": self.fleet,
            "bundle": self.bundle,
            "version": self.version,
            "slice": self.slice,
            "attach_at_s": self.attach_at_s,
            "detach_at_s": self.detach_at_s,
        }


@dataclass
class BundleUpgradeSpec:
    """Roll every live instance of ``bundle`` to ``to_version`` at ``at_s``.

    ``mode`` picks the state-copy discipline: ``precopy`` (iterative dirty
    rounds while the old chain serves; zero coverage gap) or ``stateful``
    (suspend, copy everything, cut over; simple but gapped).
    """

    bundle: str
    to_version: int
    at_s: float = 0.0
    mode: str = "precopy"

    def validate(self) -> None:
        if not self.bundle:
            raise ScenarioSpecError("upgrade bundle name must be non-empty")
        if self.to_version < 1:
            raise ScenarioSpecError(f"upgrade to_version must be >= 1, got {self.to_version}")
        if self.at_s < 0:
            raise ScenarioSpecError(f"upgrade at_s must be >= 0, got {self.at_s}")
        if self.mode not in UPGRADE_MODES:
            raise ScenarioSpecError(f"unknown upgrade mode {self.mode!r}; valid: {UPGRADE_MODES}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bundle": self.bundle,
            "to_version": self.to_version,
            "at_s": self.at_s,
            "mode": self.mode,
        }


@dataclass
class FaultSpec:
    """One injected fault.

    ``kind`` is one of ``station-crash`` (cells off, uplink down, running
    containers killed, agent silent), ``link-degrade`` (uplink loss +
    bandwidth cut; ``params``: ``loss_rate``, ``bandwidth_factor``),
    ``link-down`` (uplink administratively down) and ``container-oom``
    (OOM-kill one running NF container on the station).  Faults with a
    ``duration_s`` recover automatically.
    """

    kind: str
    station: Union[str, int] = 1
    at_s: float = 0.0
    duration_s: Optional[float] = None
    params: Dict[str, Any] = field(default_factory=dict)

    def station_name(self) -> str:
        if isinstance(self.station, int):
            return f"station-{self.station}"
        return self.station

    def validate(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ScenarioSpecError(f"unknown fault kind {self.kind!r}; valid: {FAULT_KINDS}")
        if self.at_s < 0:
            raise ScenarioSpecError(f"fault at_s must be >= 0, got {self.at_s}")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ScenarioSpecError(f"fault duration_s must be positive, got {self.duration_s}")
        if isinstance(self.station, int) and self.station < 1:
            raise ScenarioSpecError(f"fault station index must be >= 1, got {self.station}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "station": self.station,
            "at_s": self.at_s,
            "duration_s": self.duration_s,
            "params": _as_dict(self.params),
        }


@dataclass
class TopologySpec:
    """Deployment shape, mapped onto :class:`repro.core.testbed.TestbedConfig`."""

    station_count: int = 2
    cells_per_station: int = 1
    station_spacing_m: float = 80.0
    server_count: int = 1
    station_profile: str = "router"
    migration_strategy: str = "cold"
    #: Migration-engine knobs (see :mod:`repro.core.migration`): the wire
    #: chunk size for link-routed state transfers and the iterative
    #: pre-copy round budget / downtime target / dirty-delta fraction.
    migration_chunk_bytes: int = 65536
    precopy_max_rounds: int = 4
    precopy_downtime_target_s: float = 0.05
    precopy_dirty_fraction: float = 0.25
    fastpath_enabled: bool = True
    #: Placement strategy name (see :mod:`repro.core.placement`).  The
    #: default is the paper's closest-agent behaviour; the load-aware
    #: strategies only diverge from it when stations saturate, so the
    #: existing canned library digests are strategy-invariant.
    placement_strategy: str = "closest-agent"
    #: Manager-side admission control (queue deployments aimed at saturated
    #: stations instead of letting the runtime reject them).
    admission_control: bool = False
    admission_queue_timeout_s: float = 30.0
    #: Utilization-driven horizontal autoscaling of hot chains (off by
    #: default; no autoscaler events are scheduled when disabled).
    autoscale_enabled: bool = False
    autoscale_interval_s: float = 5.0
    autoscale_up_threshold: float = 0.8
    autoscale_down_threshold: float = 0.4
    autoscale_max_replicas: int = 2
    #: Control-plane shards (1 = the single historical Manager).  A scenario
    #: replays to the identical MetricsDigest for any shard count -- the
    #: knob trades control-plane event overhead, not behaviour.
    shard_count: int = 1
    #: Federation regions (1 = no federation tier).  With >1 the testbed
    #: builds a :class:`~repro.core.federation.FederatedManager` owning
    #: ``region_count`` regions of ``shard_count`` local shards each; a
    #: scenario replays to the identical MetricsDigest for any region count.
    region_count: int = 1
    #: ``packet`` or ``hybrid`` (fluid bulk flows with packet fidelity
    #: islands; see :mod:`repro.netem.fluid`).  Scenarios without ``bulk``
    #: workloads digest identically across this knob.
    simulation_mode: str = "packet"
    fluid_epoch_s: float = 0.25
    uplink_bandwidth_bps: float = 100e6
    heartbeat_interval_s: float = 2.0
    scan_interval_s: float = 0.5
    handover_scan_jitter_s: float = 0.0
    dns_zone: Dict[str, List[str]] = field(
        default_factory=lambda: {"cdn.example.com": ["203.0.113.10"]}
    )

    def validate(self) -> None:
        if self.station_count < 1:
            raise ScenarioSpecError(f"station_count must be >= 1, got {self.station_count}")
        if self.cells_per_station < 1:
            raise ScenarioSpecError(f"cells_per_station must be >= 1, got {self.cells_per_station}")
        if self.server_count < 1:
            raise ScenarioSpecError(f"server_count must be >= 1, got {self.server_count}")
        if self.station_profile not in STATION_PROFILES:
            raise ScenarioSpecError(
                f"unknown station profile {self.station_profile!r}; valid: {STATION_PROFILES}"
            )
        if self.migration_strategy not in MIGRATION_STRATEGIES:
            raise ScenarioSpecError(
                f"unknown migration strategy {self.migration_strategy!r}; valid: {MIGRATION_STRATEGIES}"
            )
        if self.migration_chunk_bytes < 1:
            raise ScenarioSpecError(
                f"migration_chunk_bytes must be >= 1, got {self.migration_chunk_bytes}"
            )
        if self.precopy_max_rounds < 1:
            raise ScenarioSpecError(
                f"precopy_max_rounds must be >= 1, got {self.precopy_max_rounds}"
            )
        if self.precopy_downtime_target_s <= 0:
            raise ScenarioSpecError(
                f"precopy_downtime_target_s must be positive, got {self.precopy_downtime_target_s}"
            )
        if not 0.0 < self.precopy_dirty_fraction < 1.0:
            raise ScenarioSpecError(
                f"precopy_dirty_fraction must be in (0, 1), got {self.precopy_dirty_fraction}"
            )
        if self.placement_strategy not in PLACEMENT_STRATEGIES:
            raise ScenarioSpecError(
                f"unknown placement strategy {self.placement_strategy!r}; "
                f"valid: {PLACEMENT_STRATEGIES}"
            )
        if self.admission_queue_timeout_s <= 0:
            raise ScenarioSpecError(
                f"admission_queue_timeout_s must be positive, got {self.admission_queue_timeout_s}"
            )
        if self.autoscale_interval_s <= 0:
            raise ScenarioSpecError(
                f"autoscale_interval_s must be positive, got {self.autoscale_interval_s}"
            )
        if not 0.0 < self.autoscale_down_threshold < self.autoscale_up_threshold:
            raise ScenarioSpecError(
                "autoscale thresholds must satisfy 0 < down < up, got "
                f"down={self.autoscale_down_threshold}, up={self.autoscale_up_threshold}"
            )
        if self.autoscale_max_replicas < 0:
            raise ScenarioSpecError(
                f"autoscale_max_replicas must be >= 0, got {self.autoscale_max_replicas}"
            )
        if self.shard_count < 1:
            raise ScenarioSpecError(f"shard_count must be >= 1, got {self.shard_count}")
        if self.region_count < 1:
            raise ScenarioSpecError(f"region_count must be >= 1, got {self.region_count}")
        if self.region_count > self.station_count:
            raise ScenarioSpecError(
                f"region_count ({self.region_count}) cannot exceed "
                f"station_count ({self.station_count})"
            )
        if self.simulation_mode not in SIMULATION_MODES:
            raise ScenarioSpecError(
                f"unknown simulation mode {self.simulation_mode!r}; valid: {SIMULATION_MODES}"
            )
        if self.fluid_epoch_s <= 0:
            raise ScenarioSpecError(
                f"fluid_epoch_s must be positive, got {self.fluid_epoch_s}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "station_count": self.station_count,
            "cells_per_station": self.cells_per_station,
            "station_spacing_m": self.station_spacing_m,
            "server_count": self.server_count,
            "station_profile": self.station_profile,
            "migration_strategy": self.migration_strategy,
            "migration_chunk_bytes": self.migration_chunk_bytes,
            "precopy_max_rounds": self.precopy_max_rounds,
            "precopy_downtime_target_s": self.precopy_downtime_target_s,
            "precopy_dirty_fraction": self.precopy_dirty_fraction,
            "fastpath_enabled": self.fastpath_enabled,
            "placement_strategy": self.placement_strategy,
            "admission_control": self.admission_control,
            "admission_queue_timeout_s": self.admission_queue_timeout_s,
            "autoscale_enabled": self.autoscale_enabled,
            "autoscale_interval_s": self.autoscale_interval_s,
            "autoscale_up_threshold": self.autoscale_up_threshold,
            "autoscale_down_threshold": self.autoscale_down_threshold,
            "autoscale_max_replicas": self.autoscale_max_replicas,
            "shard_count": self.shard_count,
            "region_count": self.region_count,
            "simulation_mode": self.simulation_mode,
            "fluid_epoch_s": self.fluid_epoch_s,
            "uplink_bandwidth_bps": self.uplink_bandwidth_bps,
            "heartbeat_interval_s": self.heartbeat_interval_s,
            "scan_interval_s": self.scan_interval_s,
            "handover_scan_jitter_s": self.handover_scan_jitter_s,
            "dns_zone": _as_dict(self.dns_zone),
        }


@dataclass
class ScenarioSpec:
    """A complete declarative scenario.

    The five building blocks: a :class:`TopologySpec` (deployment shape,
    including the control plane's ``shard_count``), :class:`ClientFleetSpec`
    fleets (who is there and how they move/talk), :class:`ChainAssignmentSpec`
    attachments (which NF chains follow which fleet, on what schedule),
    :class:`FaultSpec` injections, and the master ``seed`` from which every
    RNG in the run derives.  ``validate()`` returns ``self`` after checking
    cross-references (assignments name known fleets, faults target existing
    stations); ``to_dict()`` yields a plain-JSON tree that round-trips the
    whole description.  Specs contain no live objects: the same spec can be
    replayed any number of times by :class:`~repro.scenarios.runner.ScenarioRunner`
    and must produce the identical :class:`~repro.scenarios.digest.MetricsDigest`.
    """

    name: str
    description: str = ""
    seed: int = 0
    duration_s: float = 60.0
    topology: TopologySpec = field(default_factory=TopologySpec)
    fleets: List[ClientFleetSpec] = field(default_factory=list)
    assignments: List[ChainAssignmentSpec] = field(default_factory=list)
    bundles: List[BundleAssignmentSpec] = field(default_factory=list)
    upgrades: List[BundleUpgradeSpec] = field(default_factory=list)
    faults: List[FaultSpec] = field(default_factory=list)
    #: Piecewise traffic-share schedule (strictly increasing ``at_s``); the
    #: runner rescales era-scalable generators at every boundary.
    eras: List[TrafficEraSpec] = field(default_factory=list)

    def validate(self) -> "ScenarioSpec":
        if not self.name:
            raise ScenarioSpecError("scenario name must be non-empty")
        if self.duration_s <= 0:
            raise ScenarioSpecError(f"duration_s must be positive, got {self.duration_s}")
        self.topology.validate()
        fleet_names = set()
        for fleet in self.fleets:
            fleet.validate()
            if fleet.name in fleet_names:
                raise ScenarioSpecError(f"duplicate fleet name {fleet.name!r}")
            fleet_names.add(fleet.name)
        for assignment in self.assignments:
            assignment.validate()
            if assignment.fleet not in fleet_names:
                raise ScenarioSpecError(
                    f"assignment references unknown fleet {assignment.fleet!r}; "
                    f"known fleets: {sorted(fleet_names)}"
                )
        for bundle in self.bundles:
            bundle.validate()
            if bundle.fleet not in fleet_names:
                raise ScenarioSpecError(
                    f"bundle assignment references unknown fleet {bundle.fleet!r}; "
                    f"known fleets: {sorted(fleet_names)}"
                )
        bundle_names = {bundle.bundle for bundle in self.bundles}
        for upgrade in self.upgrades:
            upgrade.validate()
            if upgrade.bundle not in bundle_names:
                raise ScenarioSpecError(
                    f"upgrade references bundle {upgrade.bundle!r} but no bundle "
                    f"assignment instantiates it; known: {sorted(bundle_names)}"
                )
        for fault in self.faults:
            fault.validate()
            if isinstance(fault.station, int) and fault.station > self.topology.station_count:
                raise ScenarioSpecError(
                    f"fault targets station {fault.station} but the topology only has "
                    f"{self.topology.station_count} stations"
                )
        previous_at: Optional[float] = None
        for era in self.eras:
            era.validate()
            if previous_at is not None and era.at_s <= previous_at:
                raise ScenarioSpecError(
                    f"era boundaries must be strictly increasing, got {era.at_s} "
                    f"after {previous_at}"
                )
            previous_at = era.at_s
        return self

    def fleet(self, name: str) -> ClientFleetSpec:
        for fleet in self.fleets:
            if fleet.name == name:
                return fleet
        raise KeyError(f"unknown fleet {name!r}")

    def client_names(self) -> List[str]:
        names: List[str] = []
        for fleet in self.fleets:
            names.extend(fleet.client_names())
        return names

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "topology": self.topology.to_dict(),
            "fleets": [fleet.to_dict() for fleet in self.fleets],
            "assignments": [assignment.to_dict() for assignment in self.assignments],
            "bundles": [bundle.to_dict() for bundle in self.bundles],
            "upgrades": [upgrade.to_dict() for upgrade in self.upgrades],
            "faults": [fault.to_dict() for fault in self.faults],
            "eras": [era.to_dict() for era in self.eras],
        }
