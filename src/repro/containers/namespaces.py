"""Namespace records for containers.

Containers isolate processes, network state and filesystems through kernel
namespaces ("allowing each container to use the host OS kernel to isolate
processes, network routing tables, and their associated resources").  The
reproduction keeps explicit namespace objects so that tests and the
checkpoint engine can assert exactly what state belongs to a container and
what travels with it during migration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

_namespace_ids = itertools.count(1)


@dataclass
class NetworkNamespace:
    """Per-container network state: interfaces and a routing table."""

    name: str
    namespace_id: int = field(default_factory=lambda: next(_namespace_ids))
    interface_names: List[str] = field(default_factory=list)
    routes: Dict[str, str] = field(default_factory=dict)  # destination CIDR -> via interface

    def add_interface(self, interface_name: str) -> None:
        if interface_name not in self.interface_names:
            self.interface_names.append(interface_name)

    def remove_interface(self, interface_name: str) -> None:
        if interface_name in self.interface_names:
            self.interface_names.remove(interface_name)

    def add_route(self, destination: str, via_interface: str) -> None:
        self.routes[destination] = via_interface

    def serialize(self) -> Dict[str, object]:
        """State captured by checkpoints."""
        return {
            "name": self.name,
            "interfaces": list(self.interface_names),
            "routes": dict(self.routes),
        }


@dataclass
class PidNamespace:
    """Per-container process tree (just enough to model footprint and restore)."""

    name: str
    namespace_id: int = field(default_factory=lambda: next(_namespace_ids))
    processes: Dict[int, str] = field(default_factory=dict)
    _next_pid: int = 1

    def spawn(self, command: str) -> int:
        pid = self._next_pid
        self._next_pid += 1
        self.processes[pid] = command
        return pid

    def kill(self, pid: int) -> bool:
        return self.processes.pop(pid, None) is not None

    def kill_all(self) -> int:
        count = len(self.processes)
        self.processes.clear()
        return count

    @property
    def process_count(self) -> int:
        return len(self.processes)

    def serialize(self) -> Dict[str, object]:
        return {"name": self.name, "processes": dict(self.processes)}


@dataclass
class MountNamespace:
    """Per-container filesystem view: the image layers plus a writable layer."""

    name: str
    namespace_id: int = field(default_factory=lambda: next(_namespace_ids))
    lower_layers: List[str] = field(default_factory=list)
    upper_layer_mb: float = 0.0

    def mount_layers(self, layer_digests: List[str]) -> None:
        self.lower_layers = list(layer_digests)

    def write(self, megabytes: float) -> None:
        """Grow the writable layer (e.g. logs, cache objects)."""
        if megabytes < 0:
            raise ValueError("cannot write a negative amount")
        self.upper_layer_mb += megabytes

    def serialize(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "lower_layers": list(self.lower_layers),
            "upper_layer_mb": self.upper_layer_mb,
        }
