"""CPU and memory accounting (the cgroup view of an edge station).

The paper's density claim ("commodity compute devices ... are now able to
host up to hundreds of NFs") is fundamentally about memory and CPU
accounting: containers share the host kernel, so their per-instance overhead
is tiny compared to VMs.  :class:`ResourceAccount` models a station's cgroup
hierarchy -- admission control against physical memory, share-based CPU
scheduling and utilization reporting for the Manager's monitoring view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


class AdmissionError(RuntimeError):
    """Raised when a container cannot be admitted (insufficient resources)."""


@dataclass(frozen=True)
class ResourceRequest:
    """Resources requested for one container (or VM, in the baseline)."""

    memory_mb: float
    cpu_shares: int = 256

    def __post_init__(self) -> None:
        if self.memory_mb <= 0:
            raise ValueError(f"memory_mb must be positive, got {self.memory_mb}")
        if self.cpu_shares <= 0:
            raise ValueError(f"cpu_shares must be positive, got {self.cpu_shares}")


@dataclass
class CgroupEntry:
    """Accounting record for one admitted workload."""

    owner: str
    request: ResourceRequest
    cpu_seconds_consumed: float = 0.0

    @property
    def memory_mb(self) -> float:
        return self.request.memory_mb


class ResourceAccount:
    """Admission control and usage accounting for one station.

    Parameters
    ----------
    cpu_mhz:
        Total CPU capacity (sum over cores) in MHz.
    memory_mb:
        Physical memory in MB.
    system_reserved_mb:
        Memory reserved for the host OS + Agent and never handed to workloads
        (OpenWRT plus the Agent daemon on the demo routers).
    """

    def __init__(self, cpu_mhz: float, memory_mb: float, system_reserved_mb: float = 48.0) -> None:
        if cpu_mhz <= 0 or memory_mb <= 0:
            raise ValueError("cpu_mhz and memory_mb must be positive")
        if system_reserved_mb >= memory_mb:
            raise ValueError("system reservation cannot exceed physical memory")
        self.cpu_mhz = cpu_mhz
        self.memory_mb = memory_mb
        self.system_reserved_mb = system_reserved_mb
        self._entries: Dict[str, CgroupEntry] = {}
        self.admission_failures = 0

    # --------------------------------------------------------- admission

    @property
    def allocatable_memory_mb(self) -> float:
        """Memory available to workloads in total."""
        return self.memory_mb - self.system_reserved_mb

    @property
    def allocated_memory_mb(self) -> float:
        return sum(entry.memory_mb for entry in self._entries.values())

    @property
    def free_memory_mb(self) -> float:
        return self.allocatable_memory_mb - self.allocated_memory_mb

    @property
    def total_cpu_shares(self) -> int:
        return sum(entry.request.cpu_shares for entry in self._entries.values())

    def can_admit(self, request: ResourceRequest) -> bool:
        """True if the request fits in the remaining memory."""
        return request.memory_mb <= self.free_memory_mb

    def admit(self, owner: str, request: ResourceRequest) -> CgroupEntry:
        """Reserve resources for ``owner`` or raise :class:`AdmissionError`."""
        if owner in self._entries:
            raise AdmissionError(f"{owner!r} already has a cgroup entry")
        if not self.can_admit(request):
            self.admission_failures += 1
            raise AdmissionError(
                f"cannot admit {owner!r}: needs {request.memory_mb:.1f} MB, "
                f"only {self.free_memory_mb:.1f} MB free"
            )
        entry = CgroupEntry(owner=owner, request=request)
        self._entries[owner] = entry
        return entry

    def release(self, owner: str) -> None:
        """Free the resources held by ``owner`` (no-op if unknown)."""
        self._entries.pop(owner, None)

    def entry(self, owner: str) -> Optional[CgroupEntry]:
        return self._entries.get(owner)

    def owners(self) -> List[str]:
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    # --------------------------------------------------------------- usage

    def charge_cpu(self, owner: str, cpu_seconds: float) -> None:
        """Record CPU time consumed by a workload (per-packet NF processing)."""
        entry = self._entries.get(owner)
        if entry is not None:
            entry.cpu_seconds_consumed += cpu_seconds

    def cpu_seconds(self, owner: str) -> float:
        entry = self._entries.get(owner)
        return entry.cpu_seconds_consumed if entry is not None else 0.0

    def total_cpu_seconds(self) -> float:
        return sum(entry.cpu_seconds_consumed for entry in self._entries.values())

    def cpu_share_fraction(self, owner: str) -> float:
        """Fraction of CPU the owner is entitled to under contention."""
        total = self.total_cpu_shares
        entry = self._entries.get(owner)
        if entry is None or total == 0:
            return 0.0
        return entry.request.cpu_shares / total

    # ------------------------------------------------------------ snapshot

    def memory_utilization(self) -> float:
        """Fraction of allocatable memory currently reserved."""
        if self.allocatable_memory_mb <= 0:
            return 1.0
        return self.allocated_memory_mb / self.allocatable_memory_mb

    def snapshot(self) -> Dict[str, float]:
        """Usage summary included in Agent heartbeats."""
        return {
            "cpu_mhz": self.cpu_mhz,
            "memory_mb": self.memory_mb,
            "allocatable_memory_mb": self.allocatable_memory_mb,
            "allocated_memory_mb": self.allocated_memory_mb,
            "free_memory_mb": self.free_memory_mb,
            "memory_utilization": self.memory_utilization(),
            "workloads": float(len(self._entries)),
            "total_cpu_seconds": self.total_cpu_seconds(),
            "admission_failures": float(self.admission_failures),
        }
