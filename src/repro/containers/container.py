"""The container object and its lifecycle state machine.

Agents drive containers through the same lifecycle LXC/Docker would expose:
``CREATED -> STARTING -> RUNNING -> STOPPING -> STOPPED`` with pause,
checkpoint and failure excursions.  Keeping the state machine explicit (and
strict) lets the Manager reason about "unexpected or inconsistent NF state"
notifications and lets tests assert that migration never leaves a container
in limbo.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.containers.cgroups import ResourceRequest
from repro.containers.image import ContainerImage
from repro.containers.namespaces import MountNamespace, NetworkNamespace, PidNamespace

_container_ids = itertools.count(1)


class ContainerState(enum.Enum):
    """Lifecycle states of a container."""

    CREATED = "created"
    STARTING = "starting"
    RUNNING = "running"
    PAUSED = "paused"
    CHECKPOINTING = "checkpointing"
    STOPPING = "stopping"
    STOPPED = "stopped"
    FAILED = "failed"


#: Legal state transitions.  ``FAILED`` is reachable from every live state.
_VALID_TRANSITIONS: Dict[ContainerState, Tuple[ContainerState, ...]] = {
    ContainerState.CREATED: (ContainerState.STARTING, ContainerState.STOPPED, ContainerState.FAILED),
    ContainerState.STARTING: (ContainerState.RUNNING, ContainerState.FAILED),
    ContainerState.RUNNING: (
        ContainerState.PAUSED,
        ContainerState.CHECKPOINTING,
        ContainerState.STOPPING,
        ContainerState.FAILED,
    ),
    ContainerState.PAUSED: (ContainerState.RUNNING, ContainerState.STOPPING, ContainerState.FAILED),
    ContainerState.CHECKPOINTING: (ContainerState.RUNNING, ContainerState.STOPPING, ContainerState.FAILED),
    ContainerState.STOPPING: (ContainerState.STOPPED, ContainerState.FAILED),
    ContainerState.STOPPED: (),
    ContainerState.FAILED: (),
}


class InvalidTransitionError(RuntimeError):
    """Raised on an illegal lifecycle transition."""


@dataclass
class StateChange:
    """One entry of the container's state history."""

    time: float
    old_state: ContainerState
    new_state: ContainerState
    reason: str = ""


class Container:
    """A single NF container instance on one station."""

    def __init__(
        self,
        name: str,
        image: ContainerImage,
        request: ResourceRequest,
        created_at: float = 0.0,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        self.container_id = f"c{next(_container_ids):06d}"
        self.name = name
        self.image = image
        self.request = request
        self.labels: Dict[str, str] = dict(labels or {})
        self.state = ContainerState.CREATED
        self.history: List[StateChange] = []
        self.created_at = created_at
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None
        # Namespaces mirror what a real container engine would set up.
        self.network_namespace = NetworkNamespace(name=f"netns-{self.container_id}")
        self.pid_namespace = PidNamespace(name=f"pidns-{self.container_id}")
        self.mount_namespace = MountNamespace(name=f"mntns-{self.container_id}")
        self.mount_namespace.mount_layers([layer.digest for layer in image.layers])
        # The network function instance the Agent attaches once RUNNING.
        self.network_function = None
        # Switch ports occupied by this container's veth pairs (set by the Agent).
        self.ingress_port: Optional[int] = None
        self.egress_port: Optional[int] = None

    # ----------------------------------------------------------- lifecycle

    def _transition(self, new_state: ContainerState, time: float, reason: str = "") -> None:
        allowed = _VALID_TRANSITIONS[self.state]
        if new_state not in allowed:
            raise InvalidTransitionError(
                f"container {self.name!r}: illegal transition {self.state.value} -> {new_state.value}"
            )
        self.history.append(StateChange(time=time, old_state=self.state, new_state=new_state, reason=reason))
        self.state = new_state

    def mark_starting(self, time: float) -> None:
        self._transition(ContainerState.STARTING, time, "start requested")
        self.pid_namespace.spawn(f"/usr/bin/{self.image.name.split('/')[-1]}")

    def mark_running(self, time: float) -> None:
        self._transition(ContainerState.RUNNING, time, "boot complete")
        self.started_at = time

    def mark_paused(self, time: float) -> None:
        self._transition(ContainerState.PAUSED, time, "paused")

    def mark_unpaused(self, time: float) -> None:
        if self.state is not ContainerState.PAUSED:
            raise InvalidTransitionError(f"container {self.name!r} is not paused")
        self._transition(ContainerState.RUNNING, time, "unpaused")

    def mark_checkpointing(self, time: float) -> None:
        self._transition(ContainerState.CHECKPOINTING, time, "checkpoint started")

    def mark_checkpoint_done(self, time: float) -> None:
        if self.state is not ContainerState.CHECKPOINTING:
            raise InvalidTransitionError(f"container {self.name!r} is not checkpointing")
        self._transition(ContainerState.RUNNING, time, "checkpoint complete")

    def mark_stopping(self, time: float) -> None:
        if self.state is ContainerState.CREATED:
            # A never-started container can be discarded directly.
            self._transition(ContainerState.STOPPED, time, "discarded before start")
            self.stopped_at = time
            return
        self._transition(ContainerState.STOPPING, time, "stop requested")

    def mark_stopped(self, time: float) -> None:
        self._transition(ContainerState.STOPPED, time, "stopped")
        self.pid_namespace.kill_all()
        self.stopped_at = time

    def mark_failed(self, time: float, reason: str = "") -> None:
        self._transition(ContainerState.FAILED, time, reason or "failure")
        self.pid_namespace.kill_all()
        self.stopped_at = time

    # ------------------------------------------------------------- queries

    @property
    def is_running(self) -> bool:
        return self.state is ContainerState.RUNNING

    @property
    def is_terminal(self) -> bool:
        return self.state in (ContainerState.STOPPED, ContainerState.FAILED)

    @property
    def memory_footprint_mb(self) -> float:
        """Resident memory: the cgroup reservation plus the writable layer."""
        return self.request.memory_mb + self.mount_namespace.upper_layer_mb

    def uptime(self, now: float) -> float:
        """Seconds spent running (0 if never started)."""
        if self.started_at is None:
            return 0.0
        end = self.stopped_at if self.stopped_at is not None else now
        return max(0.0, end - self.started_at)

    def boot_latency(self) -> Optional[float]:
        """Time from creation to RUNNING, if the container ever got there."""
        if self.started_at is None:
            return None
        return self.started_at - self.created_at

    def describe(self) -> Dict[str, object]:
        """Status document the Agent reports to the Manager."""
        return {
            "id": self.container_id,
            "name": self.name,
            "image": self.image.reference,
            "state": self.state.value,
            "memory_mb": self.memory_footprint_mb,
            "cpu_shares": self.request.cpu_shares,
            "labels": dict(self.labels),
            "created_at": self.created_at,
            "started_at": self.started_at,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Container({self.name!r}, {self.image.reference}, {self.state.value})"
