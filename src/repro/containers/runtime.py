"""The per-station container engine.

Each GNF Agent drives one :class:`ContainerRuntime` -- the equivalent of the
LXC tooling on the demo's OpenWRT routers.  The runtime owns the station's
resource accounting, its local image/layer cache and the timing model for
every lifecycle operation (create, boot, stop, checkpoint, restore).

The same class also powers the VM-based NFV baseline: the baseline simply
instantiates it with :meth:`RuntimeTimings.for_vms` and much larger images
and memory reservations, which is exactly the difference the paper's
"lightweight containers vs. resource-hungry VMs" argument rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.containers.cgroups import AdmissionError, ResourceAccount, ResourceRequest
from repro.containers.checkpoint import Checkpoint, CheckpointEngine
from repro.containers.container import Container, ContainerState
from repro.containers.image import ContainerImage, ImageRegistry
from repro.netem.simulator import Simulator


@dataclass(frozen=True)
class RuntimeTimings:
    """Latency model of the virtualization layer.

    ``cpu_scale`` multiplies every duration, capturing how much slower a
    router-class MIPS SoC is than an x86 edge server at the same operations.
    """

    create_s: float
    base_start_s: float
    start_per_image_mb_s: float
    stop_s: float
    cpu_scale: float = 1.0

    def scaled(self, value: float) -> float:
        return value * self.cpu_scale

    def start_duration_s(self, image: ContainerImage) -> float:
        """Boot latency for an already-pulled image."""
        return self.scaled(self.base_start_s + self.start_per_image_mb_s * image.size_mb)

    def create_duration_s(self) -> float:
        return self.scaled(self.create_s)

    def stop_duration_s(self) -> float:
        return self.scaled(self.stop_s)

    @classmethod
    def for_containers(cls, cpu_scale: float = 1.0) -> "RuntimeTimings":
        """Linux-container timings (sub-second boots, calibrated to the GNF/ISCC'15 numbers)."""
        return cls(
            create_s=0.010,
            base_start_s=0.150,
            start_per_image_mb_s=0.004,
            stop_s=0.050,
            cpu_scale=cpu_scale,
        )

    @classmethod
    def for_vms(cls, cpu_scale: float = 1.0) -> "RuntimeTimings":
        """Hypervisor/VM timings (tens of seconds to boot a guest kernel + userspace)."""
        return cls(
            create_s=0.500,
            base_start_s=18.0,
            start_per_image_mb_s=0.015,
            stop_s=3.0,
            cpu_scale=cpu_scale,
        )

    @classmethod
    def for_station_profile(cls, profile_name: str) -> "RuntimeTimings":
        """Container timings scaled by station class (router vs server)."""
        if profile_name == "router-class":
            return cls.for_containers(cpu_scale=2.5)
        return cls.for_containers(cpu_scale=0.6)


class ContainerRuntime:
    """Create, boot, stop, checkpoint and restore containers on one station."""

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        resources: ResourceAccount,
        registry: Optional[ImageRegistry] = None,
        timings: Optional[RuntimeTimings] = None,
        pull_bandwidth_bps: float = 100e6,
        per_container_overhead_mb: float = 1.5,
    ) -> None:
        self.simulator = simulator
        self.name = name
        self.resources = resources
        self.registry = registry
        self.timings = timings or RuntimeTimings.for_containers()
        self.pull_bandwidth_bps = pull_bandwidth_bps
        #: Memory the engine itself spends per container (netns, veth, conmon).
        self.per_container_overhead_mb = per_container_overhead_mb
        self.checkpoint_engine = CheckpointEngine()
        self.containers: Dict[str, Container] = {}
        self.image_cache: Dict[str, ContainerImage] = {}
        self.layer_cache: Set[str] = set()
        self.pulls_performed = 0
        self.pull_seconds_total = 0.0
        self.containers_started = 0
        self.containers_failed = 0

    # --------------------------------------------------------------- images

    def cache_image(self, image: ContainerImage) -> None:
        """Pre-seed the local cache (images baked into the station's flash)."""
        self.image_cache[image.reference] = image
        self.layer_cache.update(layer.digest for layer in image.layers)

    def has_image(self, reference: str) -> bool:
        if ":" not in reference:
            reference = f"{reference}:latest"
        return reference in self.image_cache

    def ensure_image(self, reference: str) -> Tuple[ContainerImage, float]:
        """Return the image and how long obtaining it takes (0 when cached)."""
        if ":" not in reference:
            reference = f"{reference}:latest"
        cached = self.image_cache.get(reference)
        if cached is not None:
            return cached, 0.0
        if self.registry is None:
            raise KeyError(f"image {reference!r} not cached and no registry configured")
        image, pull_time = self.registry.pull_time_s(
            reference, self.pull_bandwidth_bps, cached_layers=self.layer_cache
        )
        self.cache_image(image)
        self.pulls_performed += 1
        self.pull_seconds_total += pull_time
        return image, pull_time

    # ------------------------------------------------------------ lifecycle

    def create(
        self,
        image: ContainerImage,
        name: str,
        request: Optional[ResourceRequest] = None,
        labels: Optional[Dict[str, str]] = None,
    ) -> Container:
        """Admit and create a container (synchronously; boot is separate)."""
        if name in self.containers:
            raise ValueError(f"runtime {self.name}: container {name!r} already exists")
        effective_request = request or ResourceRequest(
            memory_mb=image.default_memory_mb + self.per_container_overhead_mb,
            cpu_shares=image.default_cpu_shares,
        )
        self.resources.admit(name, effective_request)
        container = Container(
            name=name,
            image=image,
            request=effective_request,
            created_at=self.simulator.now,
            labels=labels,
        )
        self.containers[name] = container
        return container

    def start(
        self,
        container: Container,
        on_running: Optional[Callable[[Container], None]] = None,
    ) -> float:
        """Boot a created container; returns the boot duration."""
        container.mark_starting(self.simulator.now)
        duration = self.timings.create_duration_s() + self.timings.start_duration_s(container.image)

        def _finish() -> None:
            if container.state is ContainerState.STARTING:
                container.mark_running(self.simulator.now)
                self.containers_started += 1
                if on_running is not None:
                    on_running(container)

        self.simulator.schedule(duration, _finish)
        return duration

    def stop(
        self,
        container: Container,
        on_stopped: Optional[Callable[[Container], None]] = None,
    ) -> float:
        """Stop a container and release its resources; returns the stop duration."""
        container.mark_stopping(self.simulator.now)
        if container.state is ContainerState.STOPPED:
            # Never-started container: discarded immediately.
            self.resources.release(container.name)
            if on_stopped is not None:
                self.simulator.schedule(0.0, on_stopped, container)
            return 0.0
        duration = self.timings.stop_duration_s()

        def _finish() -> None:
            if container.state is ContainerState.STOPPING:
                container.mark_stopped(self.simulator.now)
                self.resources.release(container.name)
                if on_stopped is not None:
                    on_stopped(container)

        self.simulator.schedule(duration, _finish)
        return duration

    def fail(self, container: Container, reason: str = "") -> None:
        """Mark a container as failed (failure injection) and free its resources."""
        container.mark_failed(self.simulator.now, reason)
        self.resources.release(container.name)
        self.containers_failed += 1

    def destroy(self, container: Container) -> None:
        """Forget a terminal container."""
        if not container.is_terminal:
            raise RuntimeError(f"cannot destroy container {container.name!r} in state {container.state.value}")
        self.resources.release(container.name)
        self.containers.pop(container.name, None)

    # ------------------------------------------------------ checkpoint/restore

    def checkpoint(self, container: Container) -> Tuple[Checkpoint, float]:
        """Checkpoint a running container; returns (checkpoint, dump duration)."""
        container.mark_checkpointing(self.simulator.now)
        duration = self.timings.scaled(self.checkpoint_engine.checkpoint_duration_s(container))
        checkpoint = self.checkpoint_engine.create(container, self.simulator.now)
        self.simulator.schedule(duration, self._finish_checkpoint, container)
        return checkpoint, duration

    def _finish_checkpoint(self, container: Container) -> None:
        if container.state is ContainerState.CHECKPOINTING:
            container.mark_checkpoint_done(self.simulator.now)

    def restore(
        self,
        checkpoint: Checkpoint,
        name: Optional[str] = None,
        labels: Optional[Dict[str, str]] = None,
        on_running: Optional[Callable[[Container], None]] = None,
    ) -> Tuple[Container, float]:
        """Create and boot a container from a checkpoint; returns (container, duration)."""
        image, pull_time = self.ensure_image(checkpoint.image_reference)
        container = self.create(
            image,
            name=name or checkpoint.container_name,
            request=ResourceRequest(
                memory_mb=max(image.default_memory_mb, checkpoint.memory_mb),
                cpu_shares=image.default_cpu_shares,
            ),
            labels=labels or dict(checkpoint.labels),
        )
        restore_duration = self.timings.scaled(self.checkpoint_engine.restore_duration_s(checkpoint))
        container.mark_starting(self.simulator.now)
        total = pull_time + restore_duration

        def _finish() -> None:
            if container.state is ContainerState.STARTING:
                container.mark_running(self.simulator.now)
                self.containers_started += 1
                self.checkpoint_engine.apply(checkpoint, container)
                if on_running is not None:
                    on_running(container)

        self.simulator.schedule(total, _finish)
        return container, total

    # --------------------------------------------------------------- queries

    def container(self, name: str) -> Container:
        return self.containers[name]

    def running_containers(self) -> List[Container]:
        return [c for c in self.containers.values() if c.is_running]

    @property
    def running_count(self) -> int:
        return len(self.running_containers())

    def can_fit(self, image: ContainerImage) -> bool:
        """Would a container of this image pass admission right now?"""
        request = ResourceRequest(
            memory_mb=image.default_memory_mb + self.per_container_overhead_mb,
            cpu_shares=image.default_cpu_shares,
        )
        return self.resources.can_admit(request)

    def charge_cpu(self, container_name: str, cpu_seconds: float) -> None:
        """Attribute NF packet-processing CPU time to a container."""
        self.resources.charge_cpu(container_name, cpu_seconds)

    def utilization(self) -> Dict[str, float]:
        """Resource snapshot included in Agent heartbeats."""
        snapshot = self.resources.snapshot()
        snapshot.update(
            {
                "containers_total": float(len(self.containers)),
                "containers_running": float(self.running_count),
                "images_cached": float(len(self.image_cache)),
                "pulls_performed": float(self.pulls_performed),
            }
        )
        return snapshot
