"""Container runtime substrate.

GNF encapsulates every network function in a lightweight Linux container.
Since the reproduction runs offline with no container engine available, this
package provides a faithful *simulated* runtime whose externally visible
behaviour (instantiation latency, image pulls from a central repository,
memory/CPU accounting, veth wiring, checkpoint/restore for migration,
lifecycle state machine) matches what the GNF Agent exercises on the demo's
OpenWRT routers.

Modules
-------
* :mod:`repro.containers.image` -- images, layers and the central registry.
* :mod:`repro.containers.cgroups` -- CPU/memory accounting and admission.
* :mod:`repro.containers.namespaces` -- network/PID/mount namespace records.
* :mod:`repro.containers.container` -- the container object and its state
  machine.
* :mod:`repro.containers.checkpoint` -- CRIU-style checkpoint/restore used by
  stateful NF migration.
* :mod:`repro.containers.runtime` -- the per-station container engine.
"""

from repro.containers.image import ContainerImage, ImageLayer, ImageRegistry
from repro.containers.cgroups import ResourceAccount, ResourceRequest, AdmissionError
from repro.containers.namespaces import NetworkNamespace, PidNamespace, MountNamespace
from repro.containers.container import Container, ContainerState, InvalidTransitionError
from repro.containers.checkpoint import Checkpoint, CheckpointEngine
from repro.containers.runtime import ContainerRuntime, RuntimeTimings

__all__ = [
    "ContainerImage",
    "ImageLayer",
    "ImageRegistry",
    "ResourceAccount",
    "ResourceRequest",
    "AdmissionError",
    "NetworkNamespace",
    "PidNamespace",
    "MountNamespace",
    "Container",
    "ContainerState",
    "InvalidTransitionError",
    "Checkpoint",
    "CheckpointEngine",
    "ContainerRuntime",
    "RuntimeTimings",
]
