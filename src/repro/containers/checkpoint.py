"""Checkpoint/restore of NF containers (CRIU-style).

GNF's demo restarts an *equivalent* function at the new cell ("an equivalent
function can be started on the newly assigned cell and removed from the
previous cell"), which is stateless migration.  Many useful NFs carry state
(firewall connection tracking, cache contents, rate-limiter buckets), so the
reproduction also implements stateful migration built on container
checkpoint/restore -- the E5 migration benchmark compares both strategies.

A checkpoint captures the NF's exported state, the namespace contents and the
resident memory size; the transfer time between stations is derived from the
checkpoint size and the inter-station path bandwidth.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.containers.container import Container

_checkpoint_ids = itertools.count(1)


@dataclass
class Checkpoint:
    """A serialized container ready to be restored elsewhere."""

    container_name: str
    image_reference: str
    created_at: float
    memory_mb: float
    nf_state: Dict[str, object] = field(default_factory=dict)
    network_namespace: Dict[str, object] = field(default_factory=dict)
    mount_namespace: Dict[str, object] = field(default_factory=dict)
    labels: Dict[str, str] = field(default_factory=dict)
    checkpoint_id: str = field(default_factory=lambda: f"ckpt{next(_checkpoint_ids):06d}")

    @property
    def size_mb(self) -> float:
        """Bytes that must travel to the destination station, in MB.

        Dominated by resident memory pages; the serialized NF state adds a
        small, size-proportional overhead.
        """
        state_overhead_mb = 0.001 * len(str(self.nf_state))
        return self.memory_mb + state_overhead_mb

    def transfer_time_s(self, bandwidth_bps: float, rtt_s: float = 0.0) -> float:
        """Time to copy this checkpoint over a path with the given bandwidth."""
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        return rtt_s + (self.size_mb * 8 * 1_000_000) / bandwidth_bps


class CheckpointEngine:
    """Produces checkpoints from containers and applies them after restore."""

    def __init__(self, freeze_base_s: float = 0.02, dump_per_mb_s: float = 0.004) -> None:
        self.freeze_base_s = freeze_base_s
        self.dump_per_mb_s = dump_per_mb_s
        self.checkpoints_taken = 0
        self.restores_applied = 0

    def checkpoint_duration_s(self, container: Container) -> float:
        """Time to freeze the container and dump its memory to disk."""
        return self.freeze_base_s + self.dump_per_mb_s * container.memory_footprint_mb

    def create(self, container: Container, now: float) -> Checkpoint:
        """Capture the container's state (the caller handles timing/transitions)."""
        nf_state: Dict[str, object] = {}
        nf = container.network_function
        if nf is not None and hasattr(nf, "export_state"):
            nf_state = nf.export_state()
        self.checkpoints_taken += 1
        return Checkpoint(
            container_name=container.name,
            image_reference=container.image.reference,
            created_at=now,
            memory_mb=container.memory_footprint_mb,
            nf_state=nf_state,
            network_namespace=container.network_namespace.serialize(),
            mount_namespace=container.mount_namespace.serialize(),
            labels=dict(container.labels),
        )

    def restore_duration_s(self, checkpoint: Checkpoint) -> float:
        """Time to map the checkpoint back into memory and thaw the processes."""
        return self.freeze_base_s + self.dump_per_mb_s * checkpoint.memory_mb

    def apply(self, checkpoint: Checkpoint, container: Container) -> None:
        """Inject the checkpointed NF state into a freshly restored container."""
        nf = container.network_function
        if nf is not None and hasattr(nf, "import_state") and checkpoint.nf_state:
            nf.import_state(checkpoint.nf_state)
        container.labels.update(checkpoint.labels)
        self.restores_applied += 1
