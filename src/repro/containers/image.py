"""Container images and the central NF repository.

The paper: "the Manager notifies the closest Agent that retrieves (if not
already hosted locally) the NF from a central repository and starts it in a
container."  The :class:`ImageRegistry` is that repository; images carry a
size (which determines pull time over the emulated backhaul), the NF class
they package, and default resource requirements.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ImageLayer:
    """One content-addressed layer of an image."""

    digest: str
    size_mb: float

    @classmethod
    def from_content(cls, content: str, size_mb: float) -> "ImageLayer":
        digest = hashlib.sha256(content.encode("utf-8")).hexdigest()[:16]
        return cls(digest=digest, size_mb=size_mb)


@dataclass(frozen=True)
class ContainerImage:
    """An NF container image stored in the central repository."""

    name: str
    tag: str = "latest"
    layers: Tuple[ImageLayer, ...] = ()
    nf_class: str = ""
    default_memory_mb: float = 8.0
    default_cpu_shares: int = 256
    description: str = ""

    @property
    def reference(self) -> str:
        """The ``name:tag`` reference Agents use when requesting the image."""
        return f"{self.name}:{self.tag}"

    @property
    def size_mb(self) -> float:
        """Total compressed size of all layers."""
        return sum(layer.size_mb for layer in self.layers)

    @classmethod
    def build(
        cls,
        name: str,
        size_mb: float,
        nf_class: str,
        tag: str = "latest",
        default_memory_mb: float = 8.0,
        default_cpu_shares: int = 256,
        layer_count: int = 3,
        description: str = "",
    ) -> "ContainerImage":
        """Construct an image split into ``layer_count`` equal layers."""
        if size_mb <= 0:
            raise ValueError(f"image size must be positive, got {size_mb}")
        if layer_count <= 0:
            raise ValueError(f"layer_count must be positive, got {layer_count}")
        per_layer = size_mb / layer_count
        layers = tuple(
            ImageLayer.from_content(f"{name}:{tag}:layer{index}", per_layer)
            for index in range(layer_count)
        )
        return cls(
            name=name,
            tag=tag,
            layers=layers,
            nf_class=nf_class,
            default_memory_mb=default_memory_mb,
            default_cpu_shares=default_cpu_shares,
            description=description,
        )


class ImageNotFoundError(KeyError):
    """Raised when an Agent requests an image the repository does not hold."""


class ImageRegistry:
    """The central NF repository Agents pull images from.

    Pull time is modelled from the image size and the bandwidth of the path
    between the repository (in the core) and the pulling station, plus a
    fixed per-request overhead (TLS handshake, manifest resolution).  Layers
    already present in the puller's local cache are skipped, exactly like a
    real registry's layer deduplication.
    """

    def __init__(self, name: str = "gnf-repository", request_overhead_s: float = 0.05) -> None:
        self.name = name
        self.request_overhead_s = request_overhead_s
        self._images: Dict[str, ContainerImage] = {}
        self.pull_requests = 0
        self.bytes_served_mb = 0.0

    # ------------------------------------------------------------- catalog

    def push(self, image: ContainerImage) -> ContainerImage:
        """Publish an image (overwrites any previous image with the same reference)."""
        self._images[image.reference] = image
        return image

    def get(self, reference: str) -> ContainerImage:
        """Resolve a reference; a bare name implies ``:latest``."""
        if ":" not in reference:
            reference = f"{reference}:latest"
        try:
            return self._images[reference]
        except KeyError as exc:
            raise ImageNotFoundError(reference) from exc

    def __contains__(self, reference: str) -> bool:
        if ":" not in reference:
            reference = f"{reference}:latest"
        return reference in self._images

    def catalog(self) -> List[str]:
        """All published image references."""
        return sorted(self._images)

    # ----------------------------------------------------------------- pull

    def pull_time_s(
        self,
        reference: str,
        bandwidth_bps: float,
        cached_layers: Optional[set] = None,
    ) -> Tuple[ContainerImage, float]:
        """Return the image and the time a pull over ``bandwidth_bps`` takes."""
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        image = self.get(reference)
        cached = cached_layers or set()
        missing_mb = sum(layer.size_mb for layer in image.layers if layer.digest not in cached)
        transfer_s = (missing_mb * 8 * 1_000_000) / bandwidth_bps
        self.pull_requests += 1
        self.bytes_served_mb += missing_mb
        return image, self.request_overhead_s + transfer_s

    def stats(self) -> Dict[str, float]:
        return {
            "images": float(len(self._images)),
            "pull_requests": float(self.pull_requests),
            "bytes_served_mb": self.bytes_served_mb,
        }


def default_nf_images() -> List[ContainerImage]:
    """The NF image catalogue shipped with the reproduction.

    Sizes follow the paper's emphasis on *small* single-purpose containers
    (an Alpine-based iptables or nfqueue tool image is single-digit MB), and
    each image names the :mod:`repro.nfs` class it packages.
    """
    return [
        ContainerImage.build(
            "gnf/firewall", size_mb=4.0, nf_class="repro.nfs.firewall.Firewall",
            default_memory_mb=6.0, description="iptables-based packet firewall",
        ),
        ContainerImage.build(
            "gnf/http-filter", size_mb=6.0, nf_class="repro.nfs.http_filter.HTTPFilter",
            default_memory_mb=10.0, description="HTTP URL/content filter",
        ),
        ContainerImage.build(
            "gnf/dns-loadbalancer", size_mb=5.0, nf_class="repro.nfs.dns_loadbalancer.DNSLoadBalancer",
            default_memory_mb=8.0, description="DNS load balancer",
        ),
        ContainerImage.build(
            "gnf/rate-limiter", size_mb=3.0, nf_class="repro.nfs.rate_limiter.RateLimiter",
            default_memory_mb=4.0, description="tc-style token bucket rate limiter",
        ),
        ContainerImage.build(
            "gnf/nat", size_mb=4.0, nf_class="repro.nfs.nat.NAT",
            default_memory_mb=6.0, description="source NAT",
        ),
        ContainerImage.build(
            "gnf/cache", size_mb=12.0, nf_class="repro.nfs.cache.EdgeCache",
            default_memory_mb=32.0, description="edge HTTP object cache",
        ),
        ContainerImage.build(
            "gnf/ids", size_mb=10.0, nf_class="repro.nfs.ids.IntrusionDetector",
            default_memory_mb=16.0, description="signature-based intrusion detector",
        ),
        ContainerImage.build(
            "gnf/flow-monitor", size_mb=3.0, nf_class="repro.nfs.flow_monitor.FlowMonitor",
            default_memory_mb=4.0, description="passive per-flow monitor",
        ),
        ContainerImage.build(
            "gnf/load-balancer", size_mb=5.0, nf_class="repro.nfs.load_balancer.L4LoadBalancer",
            default_memory_mb=8.0, description="L4 connection load balancer",
        ),
        ContainerImage.build(
            "gnf/amf", size_mb=8.0, nf_class="repro.nfs.mobile_core.AMFFunction",
            default_memory_mb=8.0, description="AMF-like access/mobility control NF",
        ),
        ContainerImage.build(
            "gnf/smf", size_mb=9.0, nf_class="repro.nfs.mobile_core.SMFFunction",
            default_memory_mb=12.0, description="SMF-like session management NF",
        ),
        ContainerImage.build(
            "gnf/upf", size_mb=7.0, nf_class="repro.nfs.mobile_core.UPFFunction",
            default_memory_mb=8.0, description="UPF-like user plane NF with edge breakout",
        ),
    ]
