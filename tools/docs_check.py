#!/usr/bin/env python
"""Documentation consistency check.

Verifies that the documentation cannot silently rot:

1. Every repository-relative file path cited in ``README.md`` and
   ``docs/*.md`` (``src/...``, ``docs/...``, ``benchmarks/...``, bare
   ``*.md`` files, glob patterns) actually exists.
2. Every scenario name cited via ``run_scenario("...")`` /
   ``build_scenario("...")`` or the ``run_scenario.py <name>`` CLI is
   registered in the canned library, and the scenario table in
   ``docs/SCENARIOS.md`` lists *exactly* the registered scenarios.
3. The benchmark catalogue in ``docs/BENCHMARKS.md`` lists *exactly* the
   ``benchmarks/bench_*.py`` modules (every bench file has a row, every
   row cites an existing file).
4. The bundle table in ``docs/ARCHITECTURE.md`` lists *exactly* the
   ``name@vN`` refs registered in the default bundle catalogue.
5. (``--run-snippets``) The README's Python quickstart snippets execute
   successfully against the current tree.

Run from the repository root::

    PYTHONPATH=src python tools/docs_check.py [--run-snippets]

Exits non-zero with a per-finding report when anything is broken.  Wired
into CI as the ``docs-check`` job and into tier-1 via ``tests/test_docs.py``.
"""

from __future__ import annotations

import argparse
import glob
import os
import re
import sys
from typing import Dict, List, Tuple

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))

#: The documentation files the check walks.
DOC_FILES = ["README.md"] + sorted(
    os.path.relpath(path, REPO_ROOT) for path in glob.glob(os.path.join(REPO_ROOT, "docs", "*.md"))
)

#: Repo-relative path citations: a known top-level directory followed by a
#: path, or a bare UPPERCASE.md file at the root.
_PATH_PATTERN = re.compile(
    r"\b((?:src|docs|tools|examples|benchmarks|tests)/[A-Za-z0-9_\-./*]+|[A-Z][A-Z0-9_]*\.md)\b"
)

#: Scenario names cited from code snippets or CLI examples.
_SCENARIO_CALL_PATTERN = re.compile(r"(?:run_scenario|build_scenario)\(\s*\"([a-z0-9\-]+)\"")
_SCENARIO_CLI_PATTERN = re.compile(r"run_scenario\.py\s+([a-z][a-z0-9\-]+)")

#: Rows of the scenario table in docs/SCENARIOS.md: | `name` | ... |
_SCENARIO_TABLE_ROW = re.compile(r"^\|\s*`([a-z0-9\-]+)`\s*\|", re.MULTILINE)

#: Rows of the benchmark catalogue in docs/BENCHMARKS.md: the experiment id
#: and the bench module the row cites.
_BENCH_TABLE_ROW = re.compile(
    r"^\|\s*E\d+[a-z]?\s*\|\s*`(benchmarks/bench_[a-z0-9_]+\.py)`", re.MULTILINE
)

#: Rows of the bundle table in docs/ARCHITECTURE.md: | `name@vN` | ... |
_BUNDLE_TABLE_ROW = re.compile(r"^\|\s*`([a-z0-9\-]+@v\d+)`\s*\|", re.MULTILINE)

_PYTHON_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _read(relpath: str) -> str:
    with open(os.path.join(REPO_ROOT, relpath), encoding="utf-8") as handle:
        return handle.read()


def check_paths(doc_files: List[str]) -> List[str]:
    """Every cited repo-relative path (or glob) must resolve to something."""
    problems: List[str] = []
    for doc in doc_files:
        text = _read(doc)
        for match in _PATH_PATTERN.finditer(text):
            cited = match.group(1).rstrip(".")
            target = os.path.join(REPO_ROOT, cited)
            if "*" in cited:
                if not glob.glob(target):
                    problems.append(f"{doc}: glob {cited!r} matches no files")
            elif not os.path.exists(target):
                problems.append(f"{doc}: cited path {cited!r} does not exist")
    return problems


def check_scenario_names(doc_files: List[str]) -> List[str]:
    """Cited scenario names must be registered; the table must be exact."""
    from repro.scenarios import scenario_names

    registered = set(scenario_names())
    problems: List[str] = []
    for doc in doc_files:
        text = _read(doc)
        cited = set(_SCENARIO_CALL_PATTERN.findall(text)) | set(
            name for name in _SCENARIO_CLI_PATTERN.findall(text) if not name.startswith("-")
        )
        for name in sorted(cited - registered):
            problems.append(f"{doc}: cites unregistered scenario {name!r}")

    scenarios_doc = _read("docs/SCENARIOS.md")
    heading = "## The canned library"
    if heading not in scenarios_doc:
        return problems + [f"docs/SCENARIOS.md: missing the {heading!r} section"]
    table = set(_SCENARIO_TABLE_ROW.findall(scenarios_doc.split(heading, 1)[1]))
    for name in sorted(registered - table):
        problems.append(f"docs/SCENARIOS.md: registered scenario {name!r} missing from the table")
    for name in sorted(table - registered):
        problems.append(f"docs/SCENARIOS.md: table lists unknown scenario {name!r}")
    return problems


def check_bench_catalogue() -> List[str]:
    """docs/BENCHMARKS.md must catalogue exactly the bench_*.py modules."""
    path = os.path.join(REPO_ROOT, "docs", "BENCHMARKS.md")
    if not os.path.exists(path):
        return ["docs/BENCHMARKS.md: missing (the benchmark catalogue is mandatory)"]
    cited = set(_BENCH_TABLE_ROW.findall(_read("docs/BENCHMARKS.md")))
    if not cited:
        return ["docs/BENCHMARKS.md: found no benchmark table rows (| E<n> | `benchmarks/...` |)"]
    actual = {
        os.path.relpath(bench, REPO_ROOT)
        for bench in glob.glob(os.path.join(REPO_ROOT, "benchmarks", "bench_*.py"))
    }
    problems: List[str] = []
    for missing in sorted(actual - cited):
        problems.append(f"docs/BENCHMARKS.md: bench module {missing!r} has no catalogue row")
    for stale in sorted(cited - actual):
        problems.append(f"docs/BENCHMARKS.md: catalogue cites non-existent bench {stale!r}")
    return problems


def check_bundle_catalogue() -> List[str]:
    """docs/ARCHITECTURE.md must table exactly the catalogued bundle refs."""
    from repro.core.bundles import default_catalogue

    registered = set(default_catalogue().refs())
    documented = set(_BUNDLE_TABLE_ROW.findall(_read("docs/ARCHITECTURE.md")))
    problems: List[str] = []
    for missing in sorted(registered - documented):
        problems.append(f"docs/ARCHITECTURE.md: catalogued bundle {missing!r} missing from the table")
    for stale in sorted(documented - registered):
        problems.append(f"docs/ARCHITECTURE.md: table lists unknown bundle {stale!r}")
    return problems


def readme_snippets() -> List[Tuple[int, str]]:
    """The README's ```python fences, with their ordinal for error messages."""
    return list(enumerate(_PYTHON_FENCE.findall(_read("README.md")), start=1))


def run_readme_snippets() -> List[str]:
    """Execute every README Python snippet in one shared namespace."""
    problems: List[str] = []
    namespace: Dict[str, object] = {"__name__": "__readme__"}
    for ordinal, snippet in readme_snippets():
        try:
            exec(compile(snippet, f"<README.md python snippet #{ordinal}>", "exec"), namespace)
        except Exception as error:  # pragma: no cover - failure reporting
            problems.append(f"README.md: python snippet #{ordinal} failed: {error!r}")
    return problems


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--run-snippets",
        action="store_true",
        help="also execute the README's Python quickstart snippets (slower)",
    )
    args = parser.parse_args(argv)

    problems = (
        check_paths(DOC_FILES)
        + check_scenario_names(DOC_FILES)
        + check_bench_catalogue()
        + check_bundle_catalogue()
    )
    if args.run_snippets:
        problems += run_readme_snippets()

    if problems:
        print(f"docs-check: {len(problems)} problem(s):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    checked = ", ".join(DOC_FILES)
    suffix = " + README snippets" if args.run_snippets else ""
    print(f"docs-check: OK ({checked}{suffix})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
