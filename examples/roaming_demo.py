#!/usr/bin/env python3
"""The paper's demo (Fig. 2): a smartphone with a firewall, HTTP filter and
DNS load balancer roams between two wireless networks and its NFs follow.

Run with::

    python examples/roaming_demo.py [cold|stateful|precopy]
"""

from __future__ import annotations

import sys

from repro import GNFTestbed, TestbedConfig
from repro.core.chain import NFSpec, ServiceChain
from repro.netem.trafficgen import DNSWorkloadGenerator, HTTPWorkloadGenerator
from repro.wireless.mobility import LinearMobility


def main(strategy: str = "cold") -> None:
    testbed = GNFTestbed(TestbedConfig(station_count=2, migration_strategy=strategy))
    phone = testbed.add_client("smartphone", position=(0.0, 0.0))
    testbed.start()
    testbed.run(1.0)
    print(f"[{testbed.simulator.now:6.1f}s] {phone.name} attached to {phone.current_station_name}")

    chain = ServiceChain(
        [
            NFSpec("firewall"),
            NFSpec("http-filter", config={"blocked_hosts": ["blocked.example.com"]}),
            NFSpec("dns-loadbalancer", config={"pools": {"cdn.example.com": ["198.18.0.1", "198.18.0.2"]}}),
        ],
        name="demo-chain",
    )
    assignment = testbed.ui.attach_chain(phone.ip, chain)
    testbed.run(8.0)
    print(f"[{testbed.simulator.now:6.1f}s] chain {assignment.chain.nf_types} active on "
          f"{assignment.station_name} after {assignment.attach_latency_s:.2f} s")

    web = HTTPWorkloadGenerator(
        testbed.simulator, phone, server_ip=testbed.server_ip,
        sites=["blocked.example.com", "news.example.org"], mean_think_time_s=0.5,
    )
    dns = DNSWorkloadGenerator(testbed.simulator, phone, resolver_ip=testbed.server_ip,
                               names=["cdn.example.com"], query_interval_s=1.0)
    web.start()
    dns.start()
    testbed.run(10.0)
    print(f"[{testbed.simulator.now:6.1f}s] browsing: {web.pages_fetched} pages, "
          f"{web.pages_blocked} blocked by the edge HTTP filter")

    # The user walks towards the second network.
    LinearMobility(testbed.simulator, phone, velocity_mps=(8.0, 0.0), destination=(80.0, 0.0)).start()
    testbed.run(40.0)

    handover = testbed.handover.events[0]
    migration = testbed.roaming.records[0]
    print(f"[{handover.time:6.1f}s] handover {handover.old_cell} -> {handover.new_cell} "
          f"(interruption {handover.interruption_s:.3f} s)")
    print(f"[{migration.completed_at:6.1f}s] {migration.strategy} migration "
          f"{migration.from_station} -> {migration.to_station}: "
          f"NF coverage gap {migration.coverage_gap_s:.2f} s, "
          f"{migration.state_transferred_mb:.1f} MB of state moved")

    testbed.run(15.0)
    print(f"[{testbed.simulator.now:6.1f}s] blocked pages after roaming: {web.pages_blocked} "
          f"(policy followed the client)")
    print()
    print(testbed.ui.render_clients())
    print()
    print(testbed.ui.render_stations())
    web.stop()
    dns.stop()


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "cold")
