#!/usr/bin/env python3
"""The paper's demo (Fig. 2): a smartphone with a firewall, HTTP filter and
DNS load balancer roams between two wireless networks and its NFs follow.

The storyline is the canned ``fig2-roaming`` scenario; this script replays
it phase by phase and narrates what the spec makes happen.

Run with::

    python examples/roaming_demo.py [cold|stateful|precopy] [seed]
"""

from __future__ import annotations

import sys

from repro.scenarios import ScenarioRunner, build_scenario


def main(strategy: str = "cold", seed: int = 0) -> None:
    spec = build_scenario("fig2-roaming", seed=seed)
    spec.topology.migration_strategy = strategy
    run = ScenarioRunner(spec).start()
    testbed = run.testbed

    run.advance(1.0)
    phone = testbed.clients["smartphone-1"]
    print(f"[{testbed.simulator.now:6.1f}s] {phone.name} attached to {phone.current_station_name}")

    run.advance(8.0)
    assignment = run.assignments[0][1]
    print(f"[{testbed.simulator.now:6.1f}s] chain {assignment.chain.nf_types} active on "
          f"{assignment.station_name} after {assignment.attach_latency_s:.2f} s")

    # Browsing + DNS run from t=9 (per the spec); the walk starts at t=19.
    run.advance(10.0)
    web = run.generators["smartphone-1/http0"]
    print(f"[{testbed.simulator.now:6.1f}s] browsing: {web.pages_fetched} pages, "
          f"{web.pages_blocked} blocked by the edge HTTP filter")

    run.advance(40.0)
    handover = testbed.handover.events[0]
    migration = testbed.roaming.records[0]
    print(f"[{handover.time:6.1f}s] handover {handover.old_cell} -> {handover.new_cell} "
          f"(interruption {handover.interruption_s:.3f} s)")
    print(f"[{migration.completed_at:6.1f}s] {migration.strategy} migration "
          f"{migration.from_station} -> {migration.to_station}: "
          f"NF coverage gap {migration.coverage_gap_s:.2f} s, "
          f"{migration.state_transferred_mb:.1f} MB of state moved")

    run.advance(spec.duration_s - testbed.simulator.now)
    print(f"[{testbed.simulator.now:6.1f}s] blocked pages after roaming: {web.pages_blocked} "
          f"(policy followed the client)")
    print()
    print(testbed.ui.render_clients())
    print()
    print(testbed.ui.render_stations())

    result = run.finalize()
    print()
    print(f"scenario replay digest: {result.digest.hexdigest}")
    print(f"(re-run with the same seed ({result.seed}) to reproduce it byte-for-byte)")


if __name__ == "__main__":
    main(
        sys.argv[1] if len(sys.argv) > 1 else "cold",
        int(sys.argv[2]) if len(sys.argv) > 2 else 0,
    )
