#!/usr/bin/env python3
"""Provider's view: a busy multi-station edge deployment with roaming users,
an intrusion raising notifications, hotspot detection and the dashboard the
demo UI would render.

Run with::

    python examples/edge_dashboard.py
"""

from __future__ import annotations

from repro import GNFTestbed, TestbedConfig
from repro.netem import packet as pkt
from repro.netem.trafficgen import CBRTrafficGenerator, HTTPWorkloadGenerator
from repro.wireless.mobility import CommuterMobility, StaticMobility


def main() -> None:
    testbed = GNFTestbed(TestbedConfig(station_count=3, migration_strategy="precopy"))

    # Three users: two pinned near their home stations, one commuting.
    home = testbed.add_client("home-user", position=(0.0, 0.0))
    office = testbed.add_client("office-user", position=(160.0, 0.0))
    commuter = testbed.add_client("commuter", position=(80.0, 0.0))
    testbed.start()
    testbed.run(1.0)
    StaticMobility(testbed.simulator, home).start()
    StaticMobility(testbed.simulator, office).start()
    CommuterMobility(testbed.simulator, commuter, anchor_a=(80.0, 0.0), anchor_b=(0.0, 0.0),
                     speed_mps=6.0, dwell_s=20.0).start()

    # Per-user services.
    testbed.ui.attach_nf(home.ip, "cache", config={"capacity_mb": 16.0})
    testbed.ui.attach_nf(home.ip, "ids", config={"malware_signatures": ["EICAR"]})
    testbed.ui.attach_nf(office.ip, "firewall")
    testbed.ui.attach_nf(commuter.ip, "rate-limiter", config={"rate_bps": 8e6})
    testbed.run(8.0)

    # Background traffic.
    HTTPWorkloadGenerator(testbed.simulator, home, server_ip=testbed.server_ip, mean_think_time_s=0.5).start()
    CBRTrafficGenerator(testbed.simulator, office, server_ip=testbed.server_ip, rate_pps=30).start()
    CBRTrafficGenerator(testbed.simulator, commuter, server_ip=testbed.server_ip, rate_pps=30).start()

    # A piece of malware phones home from the home user's network.
    for index in range(3):
        bad = pkt.make_tcp_packet(home.ip, testbed.server_ip, 45000 + index, 80)
        bad.metadata["payload_signature"] = "EICAR"
        testbed.simulator.schedule(15.0 + index, home.send_packet, bad)

    testbed.run(90.0)

    print(testbed.ui.render_overview())
    print()
    print(testbed.ui.render_stations())
    print()
    print(testbed.ui.render_clients())
    print()
    print("Notifications (warning and above):")
    for row in testbed.ui.notifications(minimum_severity="warning"):
        print(f"  t={row['time']:7.2f}s [{row['severity']:>8}] {row['station']} / {row['nf']}: {row['message']}")
    print()
    migrations = testbed.roaming.completed_migrations()
    print(f"Completed migrations for the commuter: {len(migrations)} "
          f"(mean coverage gap {testbed.roaming.mean_coverage_gap_s():.2f} s)")
    hotspots = testbed.manager.hotspots.hotspot_stations()
    print(f"Hotspot stations flagged by the Manager: {hotspots or 'none'}")


if __name__ == "__main__":
    main()
