#!/usr/bin/env python3
"""Provider's view: a busy multi-station edge deployment with roaming users,
an intrusion raising notifications, hotspot detection and the dashboard the
demo UI would render.

The deployment is written as an inline :class:`ScenarioSpec` -- this is the
template to copy when authoring your own scenario -- and driven by the
scenario engine; only the hand-crafted malware packets are injected on top
of the live run.

Run with::

    python examples/edge_dashboard.py [seed]
"""

from __future__ import annotations

import sys

from repro.netem import packet as pkt
from repro.scenarios import (
    ChainAssignmentSpec,
    ClientFleetSpec,
    MobilitySpec,
    ScenarioRunner,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)


def build_spec(seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="edge-dashboard",
        description="Three stations, pinned users plus a commuter, per-user NFs.",
        seed=seed,
        duration_s=99.0,
        topology=TopologySpec(station_count=3, migration_strategy="precopy"),
        fleets=[
            ClientFleetSpec(
                name="home-user",
                position=(0.0, 0.0),
                workloads=[WorkloadSpec(kind="http", start_s=9.0, params={"mean_think_time_s": 0.5})],
            ),
            ClientFleetSpec(
                name="office-user",
                position=(160.0, 0.0),
                workloads=[WorkloadSpec(kind="cbr", start_s=9.0, params={"rate_pps": 30.0})],
            ),
            ClientFleetSpec(
                name="commuter",
                position=(80.0, 0.0),
                mobility=MobilitySpec(
                    model="commuter",
                    start_s=1.0,
                    params={"anchor_a": (80.0, 0.0), "anchor_b": (0.0, 0.0),
                            "speed_mps": 6.0, "dwell_s": 20.0},
                ),
                workloads=[WorkloadSpec(kind="cbr", start_s=9.0, params={"rate_pps": 30.0})],
            ),
        ],
        assignments=[
            ChainAssignmentSpec(
                fleet="home-user",
                nfs=[
                    {"nf_type": "cache", "config": {"capacity_mb": 16.0}},
                    {"nf_type": "ids", "config": {"malware_signatures": ["EICAR"]}},
                ],
                attach_at_s=1.0,
            ),
            ChainAssignmentSpec(fleet="office-user", nfs=["firewall"], attach_at_s=1.2),
            ChainAssignmentSpec(
                fleet="commuter",
                nfs=[{"nf_type": "rate-limiter", "config": {"rate_bps": 8e6}}],
                attach_at_s=1.4,
            ),
        ],
    )


def main(seed: int = 0) -> None:
    run = ScenarioRunner(build_spec(seed)).start()
    testbed = run.testbed
    run.advance(9.0)

    # A piece of malware phones home from the home user's network -- the one
    # bespoke ingredient the declarative spec does not carry.
    home = testbed.clients["home-user-1"]
    for index in range(3):
        bad = pkt.make_tcp_packet(home.ip, testbed.server_ip, 45000 + index, 80)
        bad.metadata["payload_signature"] = "EICAR"
        testbed.simulator.schedule(6.0 + index, home.send_packet, bad)

    run.advance(90.0)

    print(testbed.ui.render_overview())
    print()
    print(testbed.ui.render_stations())
    print()
    print(testbed.ui.render_clients())
    print()
    print("Notifications (warning and above):")
    for row in testbed.ui.notifications(minimum_severity="warning"):
        print(f"  t={row['time']:7.2f}s [{row['severity']:>8}] {row['station']} / {row['nf']}: {row['message']}")
    print()
    migrations = testbed.roaming.completed_migrations()
    print(f"Completed migrations for the commuter: {len(migrations)} "
          f"(mean coverage gap {testbed.roaming.mean_coverage_gap_s():.2f} s)")
    hotspots = testbed.manager.hotspots.hotspot_stations()
    print(f"Hotspot stations flagged by the Manager: {hotspots or 'none'}")

    result = run.finalize()
    print()
    print(f"scenario replay digest: {result.digest.hexdigest} (seed {result.seed})")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 0)
