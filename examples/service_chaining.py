#!/usr/bin/env python3
"""Service chaining and traffic selectors: attach different NF chains to
different subsets of several clients' traffic, including a scheduled NF.

Run with::

    python examples/service_chaining.py
"""

from __future__ import annotations

from repro import GNFTestbed, ServiceChain, TestbedConfig, TrafficSelector
from repro.core.chain import NFSpec
from repro.netem.trafficgen import CBRTrafficGenerator, DNSWorkloadGenerator, HTTPWorkloadGenerator


def main() -> None:
    testbed = GNFTestbed(TestbedConfig(station_count=2))
    alice = testbed.add_client("alice", position=(0.0, 0.0))
    bob = testbed.add_client("bob", position=(80.0, 0.0))
    testbed.start()
    testbed.run(1.0)

    # Alice: a web-only chain (cache in front of an HTTP filter), applied only
    # to her HTTP traffic; everything else bypasses the NFs.
    web_chain = ServiceChain(
        [
            NFSpec("cache", config={"capacity_mb": 32.0}),
            NFSpec("http-filter", config={"blocked_hosts": ["ads.example.net"]}),
        ],
        name="web-chain",
    )
    testbed.ui.attach_chain(alice.ip, web_chain, selector=TrafficSelector.web_traffic())

    # Alice additionally gets a DNS load balancer for her DNS lookups only.
    testbed.ui.attach_nf(
        alice.ip,
        "dns-loadbalancer",
        config={"pools": {"cdn.example.com": ["198.18.0.1", "198.18.0.2", "198.18.0.3"]}},
        selector=TrafficSelector.dns_traffic(),
    )

    # Bob: a rate limiter over all traffic, plus an IDS scheduled to run only
    # during a later "office hours" window of the simulation.
    testbed.ui.attach_nf(bob.ip, "rate-limiter", config={"rate_bps": 4e6})
    testbed.ui.schedule_nf(bob.ip, "ids", start_s=30.0, end_s=120.0)
    testbed.run(8.0)

    workloads = [
        HTTPWorkloadGenerator(testbed.simulator, alice, server_ip=testbed.server_ip,
                              sites=["cdn.example.com", "ads.example.net"], mean_think_time_s=0.4).start(),
        DNSWorkloadGenerator(testbed.simulator, alice, resolver_ip=testbed.server_ip,
                             names=["cdn.example.com"], query_interval_s=0.5).start(),
        CBRTrafficGenerator(testbed.simulator, bob, server_ip=testbed.server_ip,
                            rate_pps=200, payload_bytes=1200).start(),
    ]
    testbed.run(40.0)
    for workload in workloads:
        workload.stop()

    print(testbed.ui.render_clients())
    print()
    for client in (alice, bob):
        view = testbed.ui.client_view(client.ip)
        print(f"{client.name} ({client.ip}) @ {view['station']}")
        for assignment in view["assignments"]:
            print(f"  {assignment['chain']} on {assignment['station']} "
                  f"[{assignment['selector']}] state={assignment['state']}")
        station = testbed.manager.client_locations[client.ip]
        deployment_agent = testbed.agents[station]
        for assignment_id, deployment in deployment_agent.deployments.items():
            if deployment.client_ip != client.ip:
                continue
            for deployed in deployment.deployed_nfs:
                counters = deployed.nf.counters()
                print(f"    {deployed.nf.nf_type:>16}: in={counters['packets_in']:6d} "
                      f"dropped={counters['packets_dropped']:5d}")
    dns_answers = workloads[1].resolution_counts()
    print()
    print("DNS answers seen by alice (load-balanced by the edge NF):", dns_answers)


if __name__ == "__main__":
    main()
