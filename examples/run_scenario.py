#!/usr/bin/env python3
"""Run any canned scenario from the declarative scenario library.

Usage::

    python examples/run_scenario.py --list
    python examples/run_scenario.py --list-bundles
    python examples/run_scenario.py commuter-rush
    python examples/run_scenario.py chaos-soak --seed 7
    python examples/run_scenario.py rolling-failure --check-determinism
    python examples/run_scenario.py commuter-rush --shards 4 --check-determinism
    python examples/run_scenario.py hotspot-stadium --placement least-loaded

``--check-determinism`` runs the scenario twice under the same seed and
exits non-zero if the two telemetry digests differ (the CI smoke matrix
uses this as its regression gate).  ``--shards`` overrides the
control-plane shard count and ``--regions`` the federation region count
(``--shards`` then means shards *per region*); with
``--check-determinism`` the replay drops both overrides (but keeps any
``--placement``/``--strategy`` override), so the check also proves
shard-count and region-count invariance.
"""

from __future__ import annotations

import argparse
import sys

from repro.scenarios import build_scenario, run_scenario, scenario_names
from repro.scenarios.spec import PLACEMENT_STRATEGIES, SIMULATION_MODES


def _print_result(result) -> None:
    summary = result.summary()
    print(f"scenario            : {summary.pop('scenario')}")
    for key, value in summary.items():
        print(f"  {key:18s}: {value}")
    if result.workload_stats:
        print("  workloads:")
        for name, stats in result.workload_stats.items():
            print(
                f"    {name:28s} sent={stats['packets_sent']:8.0f} "
                f"echoed={stats['responses_received']:8.0f} "
                f"mean_rtt={stats['mean_rtt_s'] * 1e3:7.2f} ms "
                f"loss={stats['loss_rate'] * 100:5.1f} %"
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scenario", nargs="?", help="canned scenario name (see --list)")
    parser.add_argument("--seed", type=int, default=0, help="master seed (default 0)")
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="control-plane shard count (default: the scenario's own setting)",
    )
    parser.add_argument(
        "--regions",
        type=int,
        default=None,
        help=(
            "federation region count; --shards then means shards per region "
            "(default: the scenario's own setting)"
        ),
    )
    parser.add_argument(
        "--strategy",
        choices=["cold", "stateful", "precopy"],
        default=None,
        help="migration strategy override (default: the scenario's own setting)",
    )
    parser.add_argument(
        "--placement",
        choices=list(PLACEMENT_STRATEGIES),
        default=None,
        help="placement strategy override (default: the scenario's own setting)",
    )
    parser.add_argument(
        "--sim-mode",
        choices=list(SIMULATION_MODES),
        default=None,
        help=(
            "simulation engine override: 'packet' (pure packet-level) or "
            "'hybrid' (fluid bulk flows with packet fidelity islands); "
            "default: the scenario's own setting"
        ),
    )
    parser.add_argument("--list", action="store_true", help="list canned scenarios and exit")
    parser.add_argument(
        "--list-bundles",
        action="store_true",
        help="list the service-bundle catalogue (name, version, NF graph, slices) and exit",
    )
    parser.add_argument(
        "--check-determinism",
        action="store_true",
        help="run twice with the same seed and fail if the digests differ",
    )
    args = parser.parse_args(argv)

    if args.list_bundles:
        from repro.core.bundles import default_catalogue

        print("Service bundle catalogue:")
        for spec in default_catalogue().specs():
            slices = ", ".join(
                f"{s.name}(latency<={s.slo.max_latency_s}s, bw>={s.slo.min_bandwidth_mbps}Mbps)"
                if s.slo is not None and s.slo.constrained
                else s.name
                for s in spec.slices
            ) or "-"
            print(f"  {spec.ref:18s} {spec.nf_graph()}")
            print(f"  {'':18s} slices: {slices}")
            if spec.description:
                print(f"  {'':18s} {spec.description}")
        return 0

    if args.list or not args.scenario:
        print("Canned scenarios:")
        for name in scenario_names():
            spec = build_scenario(name)
            print(f"  {name:22s} {spec.description}")
        return 0

    result = run_scenario(
        args.scenario,
        seed=args.seed,
        shard_count=args.shards,
        region_count=args.regions,
        migration_strategy=args.strategy,
        placement_strategy=args.placement,
        simulation_mode=args.sim_mode,
    )
    _print_result(result)
    if not result.drained:
        print(
            f"ERROR: {result.pending_events_after_teardown} events still live after teardown",
            file=sys.stderr,
        )
        return 2
    if args.check_determinism:
        # Replay with the spec's own shard/region counts: digests must match
        # across both replays *and* those knobs, so one comparison checks
        # determinism plus shard- and region-count invariance.
        again = run_scenario(
            args.scenario,
            seed=args.seed,
            migration_strategy=args.strategy,
            placement_strategy=args.placement,
            simulation_mode=args.sim_mode,
        )
        if result.digest != again.digest:
            print(
                f"ERROR: scenario {args.scenario!r} is NOT deterministic; "
                f"differing sections: {result.digest.diff(again.digest)}",
                file=sys.stderr,
            )
            return 1
        print(f"  determinism       : OK (replay digest {again.digest.short}... matches)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
