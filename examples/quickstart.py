#!/usr/bin/env python3
"""Quickstart: bring up an emulated GNF deployment, attach a firewall to a
client and watch traffic flow through it.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import GNFTestbed, ServiceChain, TestbedConfig
from repro.netem.trafficgen import CBRTrafficGenerator


def main() -> None:
    # One home-router-class edge station with a wireless cell, a gateway and a
    # core server -- the smallest deployment GNF makes sense on.
    testbed = GNFTestbed(TestbedConfig(station_count=1))
    phone = testbed.add_client("phone", position=(0.0, 0.0))
    testbed.start()
    testbed.run(1.0)
    print(f"client {phone.name} ({phone.ip}) associated with {phone.current_cell_name}")

    # Attach a firewall + flow-monitor chain to all of the client's traffic.
    assignment = testbed.manager.attach_chain(phone.ip, ServiceChain.of("firewall", "flow-monitor"))
    testbed.run(6.0)
    print(f"assignment {assignment.assignment_id}: {assignment.state.value} "
          f"(attached in {assignment.attach_latency_s:.2f} s)")

    # Generate traffic from the client to a core server and back.
    probe = CBRTrafficGenerator(testbed.simulator, phone, server_ip=testbed.server_ip, rate_pps=50)
    probe.start()
    testbed.run(10.0)
    probe.stop()
    print(f"probe: {probe.responses_received}/{probe.packets_sent} echoed, "
          f"mean RTT {probe.mean_rtt() * 1e3:.1f} ms")

    # Inspect the deployment through the operator dashboard.
    print()
    print(testbed.ui.render_overview())
    print()
    print(testbed.ui.render_stations())
    deployment = testbed.agents["station-1"].deployment_for_client(phone.ip)
    for deployed in deployment.deployed_nfs:
        print(f"  {deployed.nf.name}: {deployed.nf.counters()}")


if __name__ == "__main__":
    main()
